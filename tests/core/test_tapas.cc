/**
 * @file
 * Unit tests for the failure manager and TapasController facade.
 */

#include "fixture.hh"

#include <memory>

#include "core/failure.hh"
#include "core/tapas.hh"
#include "llm/engine.hh"

namespace tapas {
namespace {

class TapasControllerTest : public CoreFixture
{
  protected:
    TapasControllerTest()
        : refProfile(perf.profile(referenceConfig()))
    {
        gpuPower.assign(dc.serverCount() * 8, 60.0);
    }

    TapasPolicyConfig
    allOn()
    {
        TapasPolicyConfig cfg;
        cfg.placeEnabled = true;
        cfg.routeEnabled = true;
        cfg.configEnabled = true;
        return cfg;
    }

    SaasInstanceRef
    makeInstance(std::uint32_t id, ServerId server, double demand)
    {
        engines.push_back(std::make_unique<InferenceEngine>(
            refProfile, perf.slo()));
        occupy(server, VmKind::SaaS, 0.8, 0.5);
        SaasInstanceRef ref;
        ref.id = VmId(id);
        ref.server = server;
        ref.engine = engines.back().get();
        ref.demandTps = demand;
        return ref;
    }

    ConfigProfile refProfile;
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    std::vector<double> gpuPower;
};

TEST_F(TapasControllerTest, FailureManagerThermalEmergency)
{
    FailureManager manager(cooling, hierarchy, dc);
    EXPECT_EQ(manager.active(), EmergencyKind::None);
    manager.triggerThermalEmergency(0.9);
    EXPECT_EQ(manager.active(), EmergencyKind::Thermal);
    EXPECT_NEAR(cooling.effectiveProvision(AisleId(0)).value() /
                    cooling.provision(AisleId(0)).value(),
                0.9, 1e-9);
    manager.clearAll();
    EXPECT_EQ(manager.active(), EmergencyKind::None);
}

TEST_F(TapasControllerTest, FailureManagerPowerEmergency)
{
    FailureManager manager(cooling, hierarchy, dc);
    manager.triggerPowerEmergency(0.75);
    EXPECT_EQ(manager.active(), EmergencyKind::Power);
    EXPECT_NEAR(hierarchy.effectiveRowProvision(RowId(0)).value() /
                    hierarchy.rowProvision(RowId(0)).value(),
                0.75, 1e-9);
    manager.triggerThermalEmergency(0.9);
    EXPECT_EQ(manager.active(), EmergencyKind::Both);
    manager.clearAll();
}

TEST_F(TapasControllerTest, PolicyFlagsSelectImplementations)
{
    TapasPolicyConfig baseline;
    baseline.placeEnabled = false;
    baseline.routeEnabled = false;
    baseline.configEnabled = false;
    TapasController base(baseline, dc, cooling, hierarchy, &bank,
                         &perf);
    EXPECT_STREQ(base.allocator().name(), "baseline");
    EXPECT_STREQ(base.router().name(), "baseline");
    EXPECT_EQ(base.riskAssessor(), nullptr);
    EXPECT_FALSE(base.capIaasFirst());

    TapasController full(allOn(), dc, cooling, hierarchy, &bank,
                         &perf);
    EXPECT_STREQ(full.allocator().name(), "tapas");
    EXPECT_STREQ(full.router().name(), "tapas");
    EXPECT_NE(full.riskAssessor(), nullptr);
    EXPECT_TRUE(full.capIaasFirst());
}

TEST_F(TapasControllerTest, RiskRefreshGoesThroughController)
{
    TapasController controller(allOn(), dc, cooling, hierarchy,
                               &bank, &perf);
    view.now = 0;
    controller.maybeRefreshRisk(view, gpuPower);
    ASSERT_NE(controller.riskAssessor(), nullptr);
    EXPECT_TRUE(controller.riskAssessor()->fresh());
}

TEST_F(TapasControllerTest, ConfigurePassIsNoopWhenDisabled)
{
    TapasPolicyConfig cfg = allOn();
    cfg.configEnabled = false;
    TapasController controller(cfg, dc, cooling, hierarchy, &bank,
                               &perf);
    std::vector<SaasInstanceRef> instances;
    instances.push_back(makeInstance(0, ServerId(0), 100.0));
    controller.configurePass(view, instances);
    EXPECT_EQ(controller.reconfigsIssued(), 0u);
    EXPECT_EQ(engines[0]->profile().config, referenceConfig());
}

TEST_F(TapasControllerTest, ConfigurePassRightSizesUnderSlack)
{
    TapasController controller(allOn(), dc, cooling, hierarchy,
                               &bank, &perf);
    std::vector<SaasInstanceRef> instances;
    instances.push_back(makeInstance(0, ServerId(0), 100.0));
    controller.configurePass(view, instances);
    // Plenty of row headroom and low demand: the instance is
    // right-sized to a cheaper same-quality config without a
    // reload blackout.
    EXPECT_DOUBLE_EQ(engines[0]->profile().quality, 1.0);
    EXPECT_TRUE(engines[0]->accepting());
    EXPECT_GE(engines[0]->profile().goodputTps, 100.0 * 1.5);
}

TEST_F(TapasControllerTest, PowerEmergencyTriggersReconfigs)
{
    TapasController controller(allOn(), dc, cooling, hierarchy,
                               &bank, &perf);
    FailureManager manager(cooling, hierarchy, dc);

    // Fill row 0: one SaaS instance per server, all loaded.
    std::vector<SaasInstanceRef> instances;
    std::uint32_t id = 0;
    for (ServerId sid : dc.row(RowId(0)).servers) {
        instances.push_back(makeInstance(
            id++, sid, 0.9 * refProfile.goodputTps));
        view.serverLoads[sid.index] = 0.9;
    }

    manager.triggerPowerEmergency(0.60);
    controller.configurePass(view, instances);
    // Budgets dropped sharply: at least some instances must be
    // reconfigured down.
    EXPECT_GT(controller.reconfigsIssued(), 0u);
}

TEST_F(TapasControllerTest, ConfigurePassSkipsReconfiguringEngines)
{
    TapasController controller(allOn(), dc, cooling, hierarchy,
                               &bank, &perf);
    std::vector<SaasInstanceRef> instances;
    instances.push_back(makeInstance(0, ServerId(0), 100.0));
    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B13;
    engines[0]->requestReconfig(perf.profile(smaller), 30.0);
    ASSERT_TRUE(engines[0]->reconfiguring());
    controller.configurePass(view, instances);
    EXPECT_EQ(controller.reconfigsIssued(), 0u);
}

TEST_F(TapasControllerTest, ControllerWithoutProfilesPanics)
{
    EXPECT_DEATH(TapasController(allOn(), dc, cooling, hierarchy,
                                 nullptr, &perf),
                 "profiles");
}

} // namespace
} // namespace tapas
