/**
 * @file
 * Unit tests for the placement policies.
 */

#include "fixture.hh"

#include <map>

#include "core/allocator.hh"

namespace tapas {
namespace {

class AllocatorTest : public CoreFixture
{
  protected:
    PlacementRequest
    makeRequest(VmKind kind, double peak = 0.9)
    {
        PlacementRequest req;
        req.id = VmId(1000);
        req.kind = kind;
        req.predictedPeakLoad = peak;
        if (kind == VmKind::SaaS) {
            req.endpoint = EndpointId(0);
        } else {
            req.customer = CustomerId(0);
        }
        return req;
    }
};

TEST_F(AllocatorTest, BaselinePlacesOnEmptyCluster)
{
    BaselineAllocator alloc;
    const auto pick = alloc.place(makeRequest(VmKind::IaaS), view);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(view.occupied[pick->index]);
}

TEST_F(AllocatorTest, BaselinePacksIntoPartialRacks)
{
    BaselineAllocator alloc;
    // Occupy one server in rack 5; the next placement must land in
    // the same rack (packing preference).
    const RackId target(5);
    occupy(dc.rack(target).servers[0], VmKind::IaaS, 0.9);
    const auto pick = alloc.place(makeRequest(VmKind::IaaS), view);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(dc.server(*pick).rack, target);
}

TEST_F(AllocatorTest, BaselineReturnsNulloptWhenFull)
{
    BaselineAllocator alloc;
    for (const Server &server : dc.servers())
        occupy(server.id, VmKind::IaaS, 0.5);
    EXPECT_FALSE(
        alloc.place(makeRequest(VmKind::IaaS), view).has_value());
}

TEST_F(AllocatorTest, TapasPrefersColdServersForIaas)
{
    TapasAllocator alloc{TapasPolicyConfig{}};
    const auto pick = alloc.place(makeRequest(VmKind::IaaS), view);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(bank.thermalClass(*pick), ThermalClass::Cold);
}

TEST_F(AllocatorTest, TapasPrefersWarmServersForSaas)
{
    TapasAllocator alloc{TapasPolicyConfig{}};
    const auto pick =
        alloc.place(makeRequest(VmKind::SaaS, 0.6), view);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(bank.thermalClass(*pick), ThermalClass::Warm);
}

TEST_F(AllocatorTest, TapasValidatorBlocksOverdrawnRow)
{
    TapasAllocator alloc{TapasPolicyConfig{}};
    // Fill one row with peak-load VMs and add an oversubscription
    // rack to it so the row cannot admit more peak load.
    const RowId crowded(0);
    for (ServerId sid : dc.row(crowded).servers)
        occupy(sid, VmKind::IaaS, 1.0, 1.0);
    dc.addRack(crowded);
    // Mirror the production oversubscription sequence (sim/cluster.cc):
    // materialize the new servers in the thermal model before
    // profiling them.
    thermal.extend();
    bank.profileNewServers(thermal, powerModel, 9);
    view.occupied.resize(dc.serverCount(), false);
    view.serverLoads.resize(dc.serverCount(), 0.0);

    const auto pick = alloc.place(makeRequest(VmKind::IaaS, 1.0),
                                  view);
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(dc.server(*pick).row, crowded);
}

TEST_F(AllocatorTest, TapasSpreadsPeakAcrossRows)
{
    // Placing a stream of high-peak VMs must not concentrate them in
    // one row the way packing does.
    TapasAllocator tapas{TapasPolicyConfig{}};
    BaselineAllocator baseline;

    std::map<std::uint32_t, int> tapas_rows;
    for (int i = 0; i < 12; ++i) {
        const auto pick =
            tapas.place(makeRequest(VmKind::IaaS, 0.95), view);
        ASSERT_TRUE(pick.has_value());
        occupy(*pick, VmKind::IaaS, 0.95);
        ++tapas_rows[dc.server(*pick).row.index];
    }
    // 12 VMs across 4 rows: spread means every row got some.
    EXPECT_EQ(tapas_rows.size(), dc.rowCount());
}

TEST_F(AllocatorTest, TapasBalancesIaasAndSaasWithinRows)
{
    TapasAllocator alloc{TapasPolicyConfig{}};
    for (int i = 0; i < 16; ++i) {
        const VmKind kind =
            i % 2 == 0 ? VmKind::IaaS : VmKind::SaaS;
        const auto pick = alloc.place(makeRequest(kind, 0.8), view);
        ASSERT_TRUE(pick.has_value());
        occupy(*pick, kind, 0.8);
    }
    // Every row that hosts VMs should host both kinds.
    std::map<std::uint32_t, std::pair<int, int>> mix;
    for (const PlacedVmView &vm : view.vms) {
        auto &entry = mix[dc.server(vm.server).row.index];
        if (vm.kind == VmKind::IaaS) {
            ++entry.first;
        } else {
            ++entry.second;
        }
    }
    for (const auto &[row, counts] : mix) {
        EXPECT_GT(counts.first, 0) << "row " << row;
        EXPECT_GT(counts.second, 0) << "row " << row;
    }
}

TEST_F(AllocatorTest, PredictedRowPowerCountsIdleServers)
{
    // An empty row still draws idle power for provisioned servers.
    const double empty_row = TapasAllocator::predictedRowPower(
        view, RowId(0), ServerId(), 0.0);
    const double idle_draw =
        bank.predictServerPowerW(ServerId(0), 0.0);
    EXPECT_GT(empty_row, 0.8 * idle_draw *
              static_cast<double>(dc.row(RowId(0)).servers.size()));
}

TEST_F(AllocatorTest, PredictedAirflowGrowsWithExtraVm)
{
    const AisleId aisle(0);
    const ServerId target = dc.aisle(aisle).servers.front();
    const double before = TapasAllocator::predictedAisleAirflow(
        view, aisle, ServerId(), 0.0);
    const double after = TapasAllocator::predictedAisleAirflow(
        view, aisle, target, 1.0);
    EXPECT_GT(after, before);
}

TEST_F(AllocatorTest, TapasReturnsNulloptWhenAllRowsBlocked)
{
    TapasAllocator alloc{TapasPolicyConfig{}};
    for (const Server &server : dc.servers())
        occupy(server.id, VmKind::IaaS, 1.0, 1.0);
    EXPECT_FALSE(
        alloc.place(makeRequest(VmKind::IaaS, 1.0), view)
            .has_value());
}

} // namespace
} // namespace tapas
