/**
 * @file
 * Unit tests for the instance configurator: limit compliance,
 * quality-as-last-resort ordering, hysteresis, and emergency
 * behavior.
 */

#include "fixture.hh"

#include "core/configurator.hh"

namespace tapas {
namespace {

class ConfiguratorTest : public CoreFixture
{
  protected:
    ConfiguratorTest()
        : configurator(perf, TapasPolicyConfig{}),
          refProfile(perf.profile(referenceConfig()))
    {}

    InstanceLimits
    looseLimits()
    {
        InstanceLimits limits;
        limits.maxServerPowerW = 1e9;
        limits.maxGpuTempC = 200.0;
        limits.maxAirflowCfm = 1e9;
        limits.inletC = 24.0;
        return limits;
    }

    InstanceConfigurator configurator;
    ConfigProfile refProfile;
};

TEST_F(ConfiguratorTest, LooseLimitsRightSizeWithoutQualityLoss)
{
    // Low demand under loose limits: right-sizing may pick a
    // cheaper config, but never at a quality or demand-coverage
    // cost, and never via a reload (frequency/batch only).
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, looseLimits(), 100.0, 0.999, refProfile);
    EXPECT_FALSE(decision.infeasible);
    EXPECT_DOUBLE_EQ(decision.profile.quality, 1.0);
    EXPECT_GE(decision.profile.goodputTps, 100.0 * 1.5);
    EXPECT_FALSE(decision.profile.config.requiresReload(
        referenceConfig()));
}

TEST_F(ConfiguratorTest, SaturatingDemandKeepsReferenceConfig)
{
    // At saturating demand the reference config is the optimum;
    // the configurator must not churn away from it.
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, looseLimits(), refProfile.goodputTps,
        0.999, refProfile);
    EXPECT_FALSE(decision.changed);
    EXPECT_EQ(decision.profile.config, referenceConfig());
}

TEST_F(ConfiguratorTest, PowerCapForcesLowerFrequency)
{
    InstanceLimits limits = looseLimits();
    // Cap below the reference config's full-load draw.
    const double full =
        perf.estimateServerPower(refProfile, 1.0).value();
    limits.maxServerPowerW = 0.8 * full;
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, limits, refProfile.goodputTps * 0.9,
        0.999, refProfile);
    EXPECT_TRUE(decision.changed);
    // Quality must not be sacrificed for a power cap in normal ops.
    EXPECT_DOUBLE_EQ(decision.profile.quality, 1.0);
    // The chosen config must actually fit the cap at its demand.
    EXPECT_TRUE(configurator.feasible(ServerId(0), bank, limits,
                                      decision.profile,
                                      refProfile.goodputTps * 0.9));
}

TEST_F(ConfiguratorTest, TempCapRespectedByProjection)
{
    InstanceLimits limits = looseLimits();
    limits.maxGpuTempC = 70.0;
    limits.inletC = 28.0;
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, limits, 200.0, 0.999, refProfile);
    const double util = std::min(
        1.0, 200.0 / decision.profile.goodputTps);
    const double gpu_w =
        perf.estimateGpuPower(decision.profile, util).value();
    EXPECT_LE(bank.predictHottestGpuC(ServerId(0), 28.0, gpu_w),
              70.0 + 1e-9);
}

TEST_F(ConfiguratorTest, QualityFloorBlocksSmallModels)
{
    InstanceLimits limits = looseLimits();
    limits.maxServerPowerW =
        bank.predictServerPowerW(ServerId(0), 0.0) + 100.0;
    // At near-saturating demand nothing quality-1.0 fits this cap;
    // with a 0.999 floor the configurator must NOT dip to 13B/7B,
    // only report infeasible.
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, limits, refProfile.goodputTps, 0.999,
        refProfile);
    // Under the 0.999 floor the configurator must not dip to
    // 13B/7B: quality holds at 1.0 and service degrades instead
    // (the chosen config cannot cover the demand).
    EXPECT_DOUBLE_EQ(decision.profile.quality, 1.0);
    EXPECT_LT(decision.profile.goodputTps,
              refProfile.goodputTps);
}

TEST_F(ConfiguratorTest, EmergencyFloorUnlocksSmallerModels)
{
    InstanceLimits limits = looseLimits();
    // A cap that quality-1.0 70B configs cannot meet at this demand,
    // but a quantized variant can (Table 2 last-resort behavior).
    const double idle = bank.predictServerPowerW(ServerId(0), 0.0);
    limits.maxServerPowerW = idle + 500.0;
    const double demand = 0.5 * refProfile.goodputTps;
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, limits, demand, 0.60, refProfile);
    EXPECT_FALSE(decision.infeasible);
    EXPECT_LT(decision.profile.quality, 1.0);
    // Smaller model meets the demand (Table 2: perf maintained).
    EXPECT_GE(decision.profile.goodputTps, demand);
}

TEST_F(ConfiguratorTest, PrefersQualityOverGoodputInEmergency)
{
    // Even with a relaxed floor, if a 70B config fits the limits,
    // it must win over a faster 7B config.
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, looseLimits(), 100.0, 0.60, refProfile);
    EXPECT_DOUBLE_EQ(decision.profile.quality, 1.0);
}

TEST_F(ConfiguratorTest, HysteresisHoldsNearEquivalentConfigs)
{
    // Current config slightly below the best: stay put.
    InstanceConfig near_best = referenceConfig();
    near_best.freqFrac = 1.0;
    near_best.maxBatchSize = 64;
    const ConfigProfile current = perf.profile(near_best);
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, looseLimits(), 50.0, 0.999, current);
    EXPECT_FALSE(decision.changed);
}

TEST_F(ConfiguratorTest, InfeasibleFallbackIsMildest)
{
    InstanceLimits limits = looseLimits();
    limits.maxServerPowerW = 1.0; // impossible
    const double demand = refProfile.goodputTps;
    const ConfigDecision decision = configurator.choose(
        ServerId(0), bank, limits, demand, 0.999, refProfile);
    EXPECT_TRUE(decision.infeasible);
    // Fallback = lowest power at the current demand (within a small
    // tolerance), preferring higher goodput among near-equals. At
    // saturating demand this is a downsized configuration.
    auto power_at = [&](const ConfigProfile &p) {
        const double util =
            std::min(1.0, demand / std::max(1.0, p.goodputTps));
        return perf.estimateServerPower(p, util).value();
    };
    double min_power = 1e300;
    for (const ConfigProfile &p : configurator.profileSpace()) {
        if (p.quality >= 0.999 && p.goodputTps > 0.0)
            min_power = std::min(min_power, power_at(p));
    }
    EXPECT_LE(power_at(decision.profile), min_power * 1.03);
    EXPECT_LT(power_at(decision.profile), power_at(refProfile));
}

TEST_F(ConfiguratorTest, FeasibleChecksAirflow)
{
    InstanceLimits limits = looseLimits();
    limits.maxAirflowCfm =
        bank.predictServerAirflowCfm(ServerId(0), 0.05);
    EXPECT_FALSE(configurator.feasible(
        ServerId(0), bank, limits, refProfile,
        refProfile.goodputTps));
    EXPECT_TRUE(configurator.feasible(
        ServerId(0), bank, limits, refProfile, 0.0));
}

TEST_F(ConfiguratorTest, SpaceSortedQualityFirst)
{
    const auto &space = configurator.profileSpace();
    ASSERT_GT(space.size(), 10u);
    for (std::size_t i = 1; i < space.size(); ++i) {
        EXPECT_GE(space[i - 1].quality, space[i].quality);
        if (space[i - 1].quality == space[i].quality) {
            EXPECT_GE(space[i - 1].goodputTps,
                      space[i].goodputTps);
        }
    }
}

} // namespace
} // namespace tapas
