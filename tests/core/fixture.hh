/**
 * @file
 * Shared test fixture: a small profiled datacenter with plant models,
 * used by the core-policy unit tests.
 */

#ifndef TAPAS_TESTS_CORE_FIXTURE_HH
#define TAPAS_TESTS_CORE_FIXTURE_HH

#include <gtest/gtest.h>

#include "core/context.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "llm/perf.hh"
#include "telemetry/profiles.hh"

namespace tapas {

/** A 2-aisle, 4-row, 48-server profiled cluster. */
class CoreFixture : public ::testing::Test
{
  protected:
    CoreFixture()
        : dc(makeLayout()), thermal(dc, ThermalConfig{}, 42),
          powerModel(PowerConfig{}), cooling(dc, thermal),
          hierarchy(dc, powerModel), bank(dc),
          perf(PerfModel::withReferenceSlo(
              dc.specs().front(),
              PerfParams::forSku(dc.specs().front().sku)))
    {
        bank.offlineProfile(thermal, powerModel, 8);
        view.layout = &dc;
        view.cooling = &cooling;
        view.power = &hierarchy;
        view.profiles = &bank;
        view.now = 0;
        view.outsideC = 24.0;
        view.dcLoadFrac = 0.5;
        view.serverLoads.assign(dc.serverCount(), 0.0);
        view.occupied.assign(dc.serverCount(), false);
    }

    static LayoutConfig
    makeLayout()
    {
        LayoutConfig cfg;
        cfg.aisleCount = 2;
        cfg.rowsPerAisle = 2;
        cfg.racksPerRow = 3;
        cfg.serversPerRack = 4;
        return cfg;
    }

    /** Mark a server occupied by a VM view. */
    void
    occupy(ServerId sid, VmKind kind, double peak_load,
           double current_load = 0.5)
    {
        PlacedVmView vm;
        vm.id = VmId(static_cast<std::uint32_t>(view.vms.size()));
        vm.kind = kind;
        vm.server = sid;
        vm.predictedPeakLoad = peak_load;
        vm.currentLoad = current_load;
        if (kind == VmKind::SaaS) {
            vm.endpoint = EndpointId(0);
        } else {
            vm.customer = CustomerId(0);
        }
        view.vms.push_back(vm);
        view.occupied[sid.index] = true;
        view.serverLoads[sid.index] = current_load;
    }

    DatacenterLayout dc;
    ThermalModel thermal;
    PowerModel powerModel;
    CoolingPlant cooling;
    PowerHierarchy hierarchy;
    ProfileBank bank;
    PerfModel perf;
    ClusterView view;
};

} // namespace tapas

#endif // TAPAS_TESTS_CORE_FIXTURE_HH
