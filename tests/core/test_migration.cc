/**
 * @file
 * Unit tests for the SaaS migration planner (Section 4.1).
 */

#include "fixture.hh"

#include "core/migration.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

namespace tapas {
namespace {

class MigrationTest : public CoreFixture
{
  protected:
    MigrationPlanner planner{TapasPolicyConfig{}};
};

TEST_F(MigrationTest, EmptyClusterPlansNothing)
{
    EXPECT_TRUE(planner.plan(view, 3).empty());
}

TEST_F(MigrationTest, RelievesTheHottestRow)
{
    // Pack row 0 with high-peak VMs (half SaaS) while other rows
    // stay empty: the planner must move SaaS VMs out of row 0.
    const Row &row = dc.row(RowId(0));
    for (std::size_t i = 0; i < row.servers.size(); ++i) {
        occupy(row.servers[i],
               i % 2 == 0 ? VmKind::SaaS : VmKind::IaaS, 0.95, 0.8);
    }
    const auto plans = planner.plan(view, 2);
    ASSERT_FALSE(plans.empty());
    for (const MigrationPlan &plan : plans) {
        EXPECT_EQ(dc.server(plan.from).row, RowId(0));
        EXPECT_NE(dc.server(plan.to).row, RowId(0));
        EXPECT_LT(plan.donorRowAfterW, plan.donorRowPeakW);
    }
}

TEST_F(MigrationTest, NeverMovesIaas)
{
    // Row 0 all-IaaS: nothing is movable.
    for (ServerId sid : dc.row(RowId(0)).servers)
        occupy(sid, VmKind::IaaS, 1.0, 0.9);
    EXPECT_TRUE(planner.plan(view, 3).empty());
}

TEST_F(MigrationTest, AppliesAcceptedMovesToTheView)
{
    // The planner explores what-ifs by overlay/undo on the caller's
    // view and leaves accepted moves applied, so the view matches
    // the plan it hands back (the simulator then mirrors the same
    // moves into its tables).
    const Row &row = dc.row(RowId(0));
    for (ServerId sid : row.servers)
        occupy(sid, VmKind::SaaS, 0.95, 0.8);
    const auto plans = planner.plan(view, 2);
    ASSERT_FALSE(plans.empty());
    for (const MigrationPlan &plan : plans) {
        EXPECT_FALSE(view.occupied[plan.from.index]);
        EXPECT_TRUE(view.occupied[plan.to.index]);
        bool found = false;
        for (const PlacedVmView &vm : view.vms) {
            if (vm.id == plan.vm) {
                found = true;
                EXPECT_EQ(vm.server, plan.to);
            }
        }
        EXPECT_TRUE(found);
    }
    // Rejected explorations must leave no trace: every VM still has
    // exactly one entry and the occupancy count is unchanged.
    EXPECT_EQ(view.vms.size(), row.servers.size());
    std::size_t occupied_count = 0;
    for (std::size_t s = 0; s < view.occupied.size(); ++s) {
        if (view.occupied[s])
            ++occupied_count;
    }
    EXPECT_EQ(occupied_count, row.servers.size());
}

TEST_F(MigrationTest, RespectsMaxMoves)
{
    const Row &row = dc.row(RowId(0));
    for (ServerId sid : row.servers)
        occupy(sid, VmKind::SaaS, 0.95, 0.8);
    const auto plans = planner.plan(view, 1);
    EXPECT_LE(plans.size(), 1u);
}

TEST_F(MigrationTest, SequentialPlansTargetDistinctServers)
{
    const Row &row = dc.row(RowId(0));
    for (ServerId sid : row.servers)
        occupy(sid, VmKind::SaaS, 0.9, 0.7);
    const auto plans = planner.plan(view, 3);
    for (std::size_t i = 0; i < plans.size(); ++i) {
        for (std::size_t j = i + 1; j < plans.size(); ++j) {
            EXPECT_NE(plans[i].to, plans[j].to);
            EXPECT_NE(plans[i].vm, plans[j].vm);
        }
    }
}

TEST(MigrationSim, PeriodicMigrationRunsInSimulator)
{
    SimConfig cfg = smallTestScenario(41).asTapas();
    cfg.policy.migrationEnabled = true;
    cfg.policy.migrationPeriod = 2 * kHour;
    cfg.horizon = kDay;
    ClusterSim sim(cfg);
    sim.run();
    // Migration is an optimization, not a requirement; but the
    // machinery must never corrupt placement state.
    const VmTable &vms = sim.vms();
    for (std::size_t i = 0; i < vms.size(); ++i) {
        if (vms.active(i)) {
            EXPECT_TRUE(vms.server(i).valid());
        }
    }
    EXPECT_TRUE(sim.verifyVmTable());
    EXPECT_GT(sim.metrics().sloAttainment(), 0.90);
}

} // namespace
} // namespace tapas
