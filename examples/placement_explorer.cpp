/**
 * @file
 * Placement explorer: compare random, packing (baseline), and TAPAS
 * placement for the same VM population on the same hardware — the
 * Fig. 11 experiment turned into a tool. Prints the peak-temperature
 * and row-power distributions each policy induces.
 */

#include <algorithm>
#include <iostream>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/allocator.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/profiles.hh"

using namespace tapas;

namespace {

struct Workload
{
    VmKind kind;
    double peakLoad;
};

struct Outcome
{
    double hottestGpuC;
    double peakRowKw;
};

/** Evaluate a placement: peak GPU temp and peak row power. */
Outcome
evaluate(const DatacenterLayout &dc, const ThermalModel &thermal,
         const PowerModel &power,
         const std::vector<std::pair<ServerId, Workload>> &placed)
{
    const Celsius outside(31.0);
    std::vector<double> row_w(dc.rowCount(), 0.0);
    // Idle servers still draw power.
    std::vector<bool> used(dc.serverCount(), false);
    double hottest = 0.0;
    for (const auto &[sid, vm] : placed) {
        used[sid.index] = true;
        const ServerSpec &spec = dc.specOf(sid);
        const Watts gpu_w = power.gpuPower(spec, vm.peakLoad);
        const double inlet =
            thermal.inletTemperature(sid, outside, 0.85, 0.0)
                .value();
        for (int g = 0; g < spec.gpusPerServer; ++g) {
            hottest = std::max(
                hottest, thermal.gpuTemperature(sid, g,
                                                Celsius(inlet),
                                                gpu_w).value());
        }
        row_w[dc.server(sid).row.index] +=
            power.serverPowerAtLoad(spec, vm.peakLoad).value();
    }
    for (const Server &server : dc.servers()) {
        if (!used[server.id.index]) {
            row_w[server.row.index] +=
                power.serverPowerAtLoad(dc.specOf(server.id), 0.0)
                    .value();
        }
    }
    return {hottest,
            *std::max_element(row_w.begin(), row_w.end()) / 1000.0};
}

} // namespace

int
main()
{
    std::cout << "TAPAS placement explorer: 60 VMs on an 80-server "
                 "two-row cluster\n\n";

    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 1;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 10;
    layout_cfg.serversPerRack = 4;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 5);
    PowerModel power{PowerConfig{}};
    CoolingPlant cooling(dc, thermal);
    PowerHierarchy hierarchy(dc, power);
    ProfileBank bank(dc);
    bank.offlineProfile(thermal, power, 5);

    // The workload: 60 VMs with mixed kinds and peaks.
    Rng rng(7);
    std::vector<Workload> vms;
    for (int i = 0; i < 60; ++i) {
        vms.push_back({rng.bernoulli(0.5) ? VmKind::SaaS
                                          : VmKind::IaaS,
                       rng.uniform(0.35, 1.0)});
    }

    auto run_policy = [&](VmAllocator &alloc) {
        ClusterView view;
        view.layout = &dc;
        view.cooling = &cooling;
        view.power = &hierarchy;
        view.profiles = &bank;
        view.outsideC = 31.0;
        view.dcLoadFrac = 0.8;
        view.serverLoads.assign(dc.serverCount(), 0.0);
        view.occupied.assign(dc.serverCount(), false);
        std::vector<std::pair<ServerId, Workload>> placed;
        for (std::size_t i = 0; i < vms.size(); ++i) {
            PlacementRequest request;
            request.id = VmId(static_cast<std::uint32_t>(i));
            request.kind = vms[i].kind;
            request.predictedPeakLoad = vms[i].peakLoad;
            const auto pick = alloc.place(request, view);
            if (!pick.has_value())
                continue;
            placed.emplace_back(*pick, vms[i]);
            view.occupied[pick->index] = true;
            PlacedVmView pv;
            pv.id = request.id;
            pv.kind = request.kind;
            pv.server = *pick;
            pv.predictedPeakLoad = vms[i].peakLoad;
            view.vms.push_back(pv);
        }
        return evaluate(dc, thermal, power, placed);
    };

    // Random placement envelope (1000 shuffles).
    QuantileSample random_temp;
    QuantileSample random_power;
    std::vector<int> slots(dc.serverCount());
    for (std::size_t i = 0; i < slots.size(); ++i)
        slots[i] = static_cast<int>(i);
    for (int trial = 0; trial < 1000; ++trial) {
        for (std::size_t i = 0; i < vms.size(); ++i) {
            const auto j = static_cast<std::size_t>(rng.uniformInt(
                static_cast<std::int64_t>(i),
                static_cast<std::int64_t>(slots.size()) - 1));
            std::swap(slots[i], slots[j]);
        }
        std::vector<std::pair<ServerId, Workload>> placed;
        for (std::size_t i = 0; i < vms.size(); ++i) {
            placed.emplace_back(
                ServerId(static_cast<std::uint32_t>(slots[i])),
                vms[i]);
        }
        const Outcome out = evaluate(dc, thermal, power, placed);
        random_temp.add(out.hottestGpuC);
        random_power.add(out.peakRowKw);
    }

    BaselineAllocator packing;
    TapasAllocator tapas{TapasPolicyConfig{}};
    const Outcome packed = run_policy(packing);
    const Outcome aware = run_policy(tapas);

    ConsoleTable table({"placement", "hottest GPU (C)",
                        "peak row power (kW)"});
    table.addRow({"random (median of 1000)",
                  ConsoleTable::num(random_temp.p50(), 1),
                  ConsoleTable::num(random_power.p50(), 1)});
    table.addRow({"random (worst of 1000)",
                  ConsoleTable::num(random_temp.quantile(1.0), 1),
                  ConsoleTable::num(random_power.quantile(1.0),
                                    1)});
    table.addRow({"packing (baseline)",
                  ConsoleTable::num(packed.hottestGpuC, 1),
                  ConsoleTable::num(packed.peakRowKw, 1)});
    table.addRow({"TAPAS placement",
                  ConsoleTable::num(aware.hottestGpuC, 1),
                  ConsoleTable::num(aware.peakRowKw, 1)});
    table.print(std::cout);

    std::cout << "\nPaper Fig. 11: bad placements can exceed 85 C "
                 "and draw 27% more peak power than\ngood ones; "
                 "TAPAS's validator + preference rules land near "
                 "the good tail on both axes.\n";
    return 0;
}
