/**
 * @file
 * Capacity planning: use the TAPAS simulator the way Section 4.4
 * suggests — assess how many extra racks the existing cooling/power
 * provisioning can absorb for an estimated workload before capping
 * exceeds an acceptable budget.
 *
 * The planner sweeps oversubscription levels under both policies and
 * reports the largest safe level (capped time below a target).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct Assessment
{
    double thermalCapped;
    double powerCapped;
    double peakRowFrac;
};

Assessment
assess(SimConfig cfg, int oversub_pct, bool tapas_on)
{
    cfg.oversubscriptionPct = oversub_pct;
    cfg = tapas_on ? cfg.asTapas() : cfg.asBaseline();
    ClusterSim sim(cfg);
    sim.run();
    return {sim.metrics().thermalCappedFraction(),
            sim.metrics().powerCappedFraction(),
            sim.metrics().peakRowPowerFrac.maxValue()};
}

} // namespace

int
main()
{
    std::cout << "TAPAS capacity planner\n"
              << "Question: how many racks can we add to this "
                 "datacenter without re-provisioning\n"
              << "cooling or power, keeping capped time under "
                 "0.7%?\n\n";

    SimConfig cfg = largeScaleScenario(31);
    cfg.horizon = kDay; // planning sweep: one representative day

    const double budget = 0.007;
    int safe_baseline = 0;
    int safe_tapas = 0;

    ConsoleTable table({"added racks", "policy", "thermal capped",
                        "power capped", "peak row frac", "safe?"});
    for (int oversub : {0, 10, 20, 30, 40, 50}) {
        for (bool tapas_on : {false, true}) {
            const Assessment result =
                assess(cfg, oversub, tapas_on);
            const bool safe = result.thermalCapped <= budget &&
                result.powerCapped <= budget;
            if (safe && tapas_on)
                safe_tapas = oversub;
            if (safe && !tapas_on)
                safe_baseline = oversub;
            table.addRow(
                {std::to_string(oversub) + "%",
                 tapas_on ? "TAPAS" : "Baseline",
                 ConsoleTable::pct(result.thermalCapped, 2),
                 ConsoleTable::pct(result.powerCapped, 2),
                 ConsoleTable::num(result.peakRowFrac, 3),
                 safe ? "yes" : "NO"});
        }
    }
    table.print(std::cout);

    std::cout << "\nPlanner verdict: Baseline can safely "
                 "oversubscribe up to " << safe_baseline
              << "% extra racks;\nTAPAS extends the safe window to "
              << safe_tapas
              << "% (the paper reports up to 40% additional "
                 "capacity).\n";
    return 0;
}
