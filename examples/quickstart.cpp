/**
 * @file
 * Quickstart: build a small GPU cluster, run one simulated day under
 * full TAPAS, and print the headline thermal/power/service metrics.
 *
 * This walks the core public API end to end:
 *   SimConfig -> ClusterSim -> SimMetrics.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

int
main()
{
    std::cout << "TAPAS quickstart: 48 servers, one day, "
                 "full TAPAS vs baseline\n";

    // 1. Start from a canned scenario and customize it.
    SimConfig cfg = smallTestScenario(/* seed = */ 2026);
    cfg.vmTrace.saasFraction = 0.5; // half SaaS, half IaaS
    cfg.weather.climate = Climate::Temperate;

    // 2. Run the baseline (thermal/power-oblivious placement,
    //    least-loaded routing, no reconfiguration).
    ClusterSim baseline(cfg.asBaseline());
    baseline.run();

    // 3. Run full TAPAS: aware placement + risk-filtered routing +
    //    instance configuration.
    ClusterSim tapas(cfg.asTapas());
    tapas.run();

    // 4. Compare.
    const SimMetrics &bm = baseline.metrics();
    const SimMetrics &tm = tapas.metrics();
    ConsoleTable table({"metric", "baseline", "tapas"});
    table.addRow({"peak row power (frac of provision)",
                  ConsoleTable::num(bm.peakRowPowerFrac.maxValue(),
                                    3),
                  ConsoleTable::num(tm.peakRowPowerFrac.maxValue(),
                                    3)});
    table.addRow({"max GPU temperature (C)",
                  ConsoleTable::num(bm.maxGpuTempC.maxValue(), 1),
                  ConsoleTable::num(tm.maxGpuTempC.maxValue(), 1)});
    table.addRow({"mean datacenter power (kW)",
                  ConsoleTable::num(
                      bm.datacenterPowerW.mean() / 1000.0, 0),
                  ConsoleTable::num(
                      tm.datacenterPowerW.mean() / 1000.0, 0)});
    table.addRow({"SLO attainment",
                  ConsoleTable::pct(bm.sloAttainment()),
                  ConsoleTable::pct(tm.sloAttainment())});
    table.addRow({"mean result quality",
                  ConsoleTable::num(bm.meanQuality(), 3),
                  ConsoleTable::num(tm.meanQuality(), 3)});
    table.addRow({"instance reconfigurations",
                  std::to_string(bm.reconfigs),
                  std::to_string(tm.reconfigs)});
    table.print(std::cout);

    std::cout << "\nTAPAS trims thermal/power peaks and energy "
                 "while holding SLOs and quality.\n"
                 "Next: examples/capacity_planning.cpp, "
                 "examples/failure_drill.cpp,\n"
                 "examples/placement_explorer.cpp\n";
    return 0;
}
