/**
 * @file
 * Crash-recovery drill driver for scripts/crash_drill.sh and the CI
 * crash-recovery job. Runs a scenario while checkpointing every
 * --period-steps steps, optionally SIGKILLs itself mid-run
 * (--kill-after) to simulate a crash, resumes from the snapshot on
 * the next invocation, and emits a key=value report (--out) that the
 * drill byte-compares against a straight-through reference run —
 * the executable form of the bit-exact resume contract.
 *
 * A separate mode (--expect-corrupt <path>) asserts the negative
 * half of the contract: restoring a damaged snapshot must return a
 * structured tapas::Error (Corrupt / Version / Mismatch), never
 * succeed and never crash.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/serialize.hh"
#include "sim/cluster.hh"
#include "sim/metrics.hh"
#include "sim/scenario_io.hh"

using namespace tapas;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --scenario <file|name> [--seed N]\n"
        "          [--ckpt <path>] [--period-steps N]\n"
        "          [--kill-after N] [--out <path>]\n"
        "          [--expect-corrupt <path>]\n"
        "\n"
        "  --scenario        spec file (key = value) or canned name\n"
        "  --seed            seed for canned scenarios (default 1)\n"
        "  --ckpt            checkpoint path; resumed if present\n"
        "  --period-steps    steps between checkpoints (default 12)\n"
        "  --kill-after      raise(SIGKILL) after N checkpoints\n"
        "  --out             key=value run report (atomic write)\n"
        "  --expect-corrupt  exit 0 iff restoring <path> fails with\n"
        "                    a structured error (corruption drill)\n",
        argv0);
    return 1;
}

/** Spec file when the argument names one, canned scenario else. */
Result<SimConfig>
resolveScenario(const std::string &arg, std::uint64_t seed)
{
    if (fileExists(arg))
        return loadScenarioSpec(arg);
    return scenarioByName(arg, seed);
}

std::string
buildReport(ClusterSim &sim, bool resumed)
{
    const SimMetrics &m = sim.metrics();
    char line[128];
    std::string out;
    auto emitU64 = [&](const char *key, std::uint64_t v) {
        std::snprintf(line, sizeof line, "%s=%llu\n", key,
                      static_cast<unsigned long long>(v));
        out += line;
    };
    auto emitF64 = [&](const char *key, double v) {
        // %.17g: shortest text that round-trips an IEEE double, so
        // byte-equal reports imply bit-equal metrics.
        std::snprintf(line, sizeof line, "%s=%.17g\n", key, v);
        out += line;
    };
    std::snprintf(line, sizeof line, "state_digest=%016llx\n",
                  static_cast<unsigned long long>(sim.stateDigest()));
    out += line;
    std::snprintf(line, sizeof line, "config_digest=%016llx\n",
                  static_cast<unsigned long long>(sim.configDigest()));
    out += line;
    emitU64("total_steps", m.totalSteps);
    emitU64("requests_completed", m.requestsCompleted);
    emitU64("slo_violations", m.sloViolations);
    emitU64("reconfigs", m.reconfigs);
    emitU64("migrations", m.migrations);
    emitU64("power_cap_steps", m.powerCapSteps);
    emitU64("thermal_throttle_steps", m.thermalThrottleSteps);
    emitU64("fault_steps", m.faultSteps);
    emitU64("recoveries", m.recoveries);
    emitF64("total_tokens", m.totalTokens);
    emitF64("goodput_tokens", m.goodputTokens);
    emitF64("quality_weighted_tokens", m.qualityWeightedTokens);
    emitF64("fault_served_tokens", m.faultServedTokens);
    // The resume path must not leak into the report: a resumed run
    // and a straight-through run byte-compare equal, so `resumed`
    // is deliberately excluded. It is logged to stderr instead.
    (void)resumed;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario_arg;
    std::string ckpt_path;
    std::string out_path;
    std::string corrupt_path;
    std::uint64_t seed = 1;
    long period_steps = 12;
    long kill_after = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *val = nullptr;
        if (flag == "--scenario" && (val = next())) {
            scenario_arg = val;
        } else if (flag == "--seed" && (val = next())) {
            seed = std::strtoull(val, nullptr, 10);
        } else if (flag == "--ckpt" && (val = next())) {
            ckpt_path = val;
        } else if (flag == "--period-steps" && (val = next())) {
            period_steps = std::strtol(val, nullptr, 10);
        } else if (flag == "--kill-after" && (val = next())) {
            kill_after = std::strtol(val, nullptr, 10);
        } else if (flag == "--out" && (val = next())) {
            out_path = val;
        } else if (flag == "--expect-corrupt" && (val = next())) {
            corrupt_path = val;
        } else {
            return usage(argv[0]);
        }
    }
    if (scenario_arg.empty() || period_steps <= 0)
        return usage(argv[0]);

    Result<SimConfig> cfg = resolveScenario(scenario_arg, seed);
    if (!cfg.ok()) {
        std::fprintf(stderr, "checkpoint_drill: %s\n",
                     cfg.error().message().c_str());
        return 1;
    }
    ClusterSim sim(cfg.value());

    if (!corrupt_path.empty()) {
        const Error err = sim.restoreCheckpoint(corrupt_path);
        if (err.ok()) {
            std::fprintf(stderr,
                         "FAIL: corrupted snapshot '%s' was "
                         "accepted\n",
                         corrupt_path.c_str());
            return 1;
        }
        if (err.code() == ErrorCode::Io) {
            std::fprintf(stderr,
                         "FAIL: expected a corruption error for "
                         "'%s', got I/O: %s\n",
                         corrupt_path.c_str(),
                         err.message().c_str());
            return 1;
        }
        std::fprintf(stderr, "OK: snapshot rejected: %s\n",
                     err.message().c_str());
        return 0;
    }

    bool resumed = false;
    if (!ckpt_path.empty() && fileExists(ckpt_path)) {
        const Error err = sim.restoreCheckpoint(ckpt_path);
        if (!err.ok()) {
            std::fprintf(stderr,
                         "checkpoint_drill: cannot resume from "
                         "'%s': %s\n",
                         ckpt_path.c_str(),
                         err.message().c_str());
            return 1;
        }
        resumed = true;
        std::fprintf(stderr, "resumed at t=%lld s\n",
                     static_cast<long long>(sim.now()));
    }

    long checkpoints_written = 0;
    while (!sim.finished()) {
        sim.runSteps(static_cast<int>(period_steps));
        if (ckpt_path.empty())
            continue;
        const Error err = sim.saveCheckpoint(ckpt_path);
        if (!err.ok()) {
            std::fprintf(stderr,
                         "checkpoint_drill: save to '%s' failed: "
                         "%s\n",
                         ckpt_path.c_str(), err.message().c_str());
            return 1;
        }
        ++checkpoints_written;
        if (kill_after >= 0 && checkpoints_written >= kill_after) {
            // Simulated crash: no cleanup, no flush, no exit
            // handlers — exactly what a power loss leaves behind.
            std::fprintf(stderr,
                         "killing self after %ld checkpoints "
                         "(t=%lld s)\n",
                         checkpoints_written,
                         static_cast<long long>(sim.now()));
            std::raise(SIGKILL);
        }
    }

    if (!out_path.empty()) {
        const Error err =
            atomicWriteFile(out_path, buildReport(sim, resumed));
        if (!err.ok()) {
            std::fprintf(stderr,
                         "checkpoint_drill: report write failed: "
                         "%s\n",
                         err.message().c_str());
            return 1;
        }
    }
    std::fprintf(stderr, "done: t=%lld s%s\n",
                 static_cast<long long>(sim.now()),
                 resumed ? " (resumed)" : "");
    return 0;
}
