/**
 * @file
 * Compound-emergency failure drill: a hot-climate day with a chiller
 * derate (cooling floor 75% from 11:00 to 18:00) stacked on the heat
 * wave and the afternoon demand peak — the faultDrillScenario from
 * sim/scenario.hh, driven through the stochastic fault-injection
 * engine. Watch TAPAS react hour by hour, then compare its
 * robustness report against the reactive baseline (paper Sections
 * 4.4 and 5.4).
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/faults.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

void
hourlyDrill(const SimConfig &cfg)
{
    ClusterSim sim(cfg);
    std::cout << "\n--- TAPAS through the drill "
                 "(chiller floor 75%, 11:00 - 18:00) ---\n";
    ConsoleTable table({"time", "chiller", "emergency",
                        "peak row frac", "saas served tps",
                        "quality", "reconfigs"});

    std::uint64_t last_reconfigs = 0;
    while (!sim.finished()) {
        sim.runSteps(12); // advance one hour (5-minute steps)
        const SimMetrics &m = sim.metrics();
        const std::size_t i = m.peakRowPowerFrac.size() - 1;
        const SimTime t = m.peakRowPowerFrac.timeAt(i);
        const std::uint64_t reconfigs =
            m.reconfigs - last_reconfigs;
        last_reconfigs = m.reconfigs;
        if (t < 9 * kHour || t > 20 * kHour)
            continue;
        const FaultEngine *engine = sim.faultInjector();
        const bool derated =
            engine != nullptr && engine->chillerFloor() < 1.0;
        table.addRow(
            {std::to_string(t / kHour) + ":00",
             derated ? ConsoleTable::pct(engine->chillerFloor())
                     : std::string("-"),
             sim.failures().active() == EmergencyKind::None
                 ? "-"
                 : "THERMAL",
             ConsoleTable::num(m.peakRowPowerFrac.valueAt(i), 3),
             ConsoleTable::num(m.saasServedTps.valueAt(i), 0),
             ConsoleTable::num(m.saasQuality.valueAt(i), 3),
             std::to_string(reconfigs)});
    }
    table.print(std::cout);
}

SimMetrics
runSilent(const SimConfig &cfg)
{
    ClusterSim sim(cfg);
    sim.run();
    return sim.metrics();
}

} // namespace

int
main()
{
    std::cout << "TAPAS compound-emergency drill: chiller derate + "
                 "heat wave + demand peak\n";
    const SimConfig cfg = faultDrillScenario(47);

    hourlyDrill(cfg.asTapas());

    const SimMetrics base = runSilent(cfg.asBaseline());
    const SimMetrics tap = runSilent(cfg.asTapas());

    std::cout << "\n--- Robustness report (full day) ---\n";
    ConsoleTable report({"metric", "Baseline", "TAPAS"});
    report.addRow({"inlet excursion steps",
                   std::to_string(base.inletExcursionSteps),
                   std::to_string(tap.inletExcursionSteps)});
    report.addRow({"fault-window loss",
                   ConsoleTable::pct(base.faultThroughputLossFrac()),
                   ConsoleTable::pct(tap.faultThroughputLossFrac())});
    report.addRow({"mean recovery (s)",
                   ConsoleTable::num(base.meanRecoveryS(), 0),
                   ConsoleTable::num(tap.meanRecoveryS(), 0)});
    report.addRow({"max recovery (s)",
                   std::to_string(base.maxRecoveryS),
                   std::to_string(tap.maxRecoveryS)});
    report.addRow({"min quality",
                   ConsoleTable::num(base.saasQuality.minValue(), 3),
                   ConsoleTable::num(tap.saasQuality.minValue(), 3)});
    report.print(std::cout);

    std::cout
        << "\nWhat to look for: while the chiller is derated TAPAS "
           "sheds heat proactively\n"
        << "(quality dips as SaaS reconfigures to cheaper models) "
           "and spends less time in\n"
        << "inlet excursion than the baseline, then recovers once "
           "the plant is repaired.\n";
    return 0;
}
