/**
 * @file
 * Failure drill: inject a UPS failure (power budgets drop to 75%)
 * and then an AHU failure (airflow to 90%) during the daily peak,
 * and watch TAPAS react minute by minute — rerouting, reconfiguring
 * SaaS instances toward cheaper configurations, and sparing IaaS
 * from frequency caps (paper Sections 4.4 and 5.4).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

void
drill(const SimConfig &base, bool thermal, const char *label)
{
    SimConfig cfg = base;
    cfg.horizon = kDay;
    FailureEvent event;
    event.at = 12 * kHour;
    event.until = 15 * kHour;
    event.thermal = thermal;
    event.remainingFrac = thermal ? 0.90 : 0.75;
    cfg.failures.push_back(event);

    ClusterSim sim(cfg.asTapas());
    std::cout << "\n--- " << label << " (12:00 - 15:00) ---\n";
    ConsoleTable table({"time", "emergency", "peak row frac",
                        "saas served tps", "quality",
                        "iaas cap deficit", "reconfigs"});

    std::uint64_t last_reconfigs = 0;
    while (!sim.finished()) {
        sim.runSteps(12); // advance one hour (5-minute steps)
        const SimMetrics &m = sim.metrics();
        const std::size_t i = m.peakRowPowerFrac.size() - 1;
        const SimTime t = m.peakRowPowerFrac.timeAt(i);
        if (t < 10 * kHour || t > 17 * kHour)
            continue;
        const char *state =
            sim.failures().active() == EmergencyKind::None
            ? "-"
            : (thermal ? "THERMAL" : "POWER");
        table.addRow(
            {std::to_string(t / kHour) + ":00", state,
             ConsoleTable::num(m.peakRowPowerFrac.valueAt(i), 3),
             ConsoleTable::num(m.saasServedTps.valueAt(i), 0),
             ConsoleTable::num(m.saasQuality.valueAt(i), 3),
             ConsoleTable::pct(m.iaasPerfPenalty.valueAt(i)),
             std::to_string(m.reconfigs - last_reconfigs)});
        last_reconfigs = m.reconfigs;
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "TAPAS failure drill: UPS and AHU emergencies at "
                 "daily peak\n";
    const SimConfig cfg = largeScaleScenario(47);

    drill(cfg, /*thermal=*/false,
          "UPS failure: row power budgets -> 75%");
    drill(cfg, /*thermal=*/true,
          "AHU failure: aisle airflow -> 90%");

    std::cout
        << "\nWhat to look for (paper Table 2): during the window "
           "the quality dips (smaller/\n"
        << "quantized models absorb the cut), SaaS served rate "
           "holds, and the IaaS cap\n"
        << "deficit stays near zero because TAPAS absorbs the "
           "emergency in the SaaS fleet.\n";
    return 0;
}
