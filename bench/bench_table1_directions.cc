/**
 * @file
 * Table 1: direction-of-impact matrix for the five configuration
 * knobs, measured at equal token demand.
 *
 * Paper: ModelSize down  -> perf UP,  temp DOWN, power DOWN, quality
 *        DOWN DOWN; Quantization down -> perf UP, temp DOWN, power
 *        DOWN, quality DOWN; TP8 -> TP2 -> perf DOWN, temp UP, power
 *        DOWN, quality same; Frequency down -> perf DOWN, temp DOWN,
 *        power DOWN, quality same; Batch down -> perf DOWN, temp
 *        DOWN, power DOWN, quality same.
 */

#include <iostream>

#include "common/table.hh"
#include "llm/perf.hh"

using namespace tapas;

namespace {

const char *
arrow(double delta, double tolerance = 1e-9)
{
    if (delta > tolerance)
        return "UP";
    if (delta < -tolerance)
        return "DOWN";
    return "same";
}

} // namespace

int
main()
{
    printBanner(std::cout, "Table 1: configuration knob directions");

    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));
    const ConfigProfile ref = perf.profile(referenceConfig());

    // The paper's Table 1 derives from saturated profiling runs
    // (Fig. 15): temperature proxy = hottest-GPU power at
    // saturation; power = whole-server power at saturation.
    auto evaluate = [&](const ConfigProfile &p) {
        struct Point
        {
            double perf;
            double temp_proxy;
            double power;
            double quality;
        } point{};
        point.perf = p.goodputTps;
        // Time-mixed per-GPU power at saturation (both phases).
        point.temp_proxy = perf.estimateGpuPower(p, 1.0).value();
        point.power = perf.estimateServerPower(p, 1.0).value();
        point.quality = p.quality;
        return point;
    };
    const auto base = evaluate(ref);

    ConsoleTable table({"knob change", "perf", "temp", "power",
                        "quality", "paper row"});

    auto add_row = [&](const char *label, InstanceConfig config,
                       const char *paper) {
        const auto point = evaluate(perf.profile(config));
        table.addRow({label, arrow(point.perf - base.perf),
                      arrow(point.temp_proxy - base.temp_proxy),
                      arrow(point.power - base.power),
                      arrow(point.quality - base.quality),
                      paper});
    };

    InstanceConfig smaller = referenceConfig();
    smaller.model = ModelSize::B7;
    add_row("model 70B -> 7B", smaller,
            "perf UP temp DOWN power DOWN quality DOWNDOWN");

    InstanceConfig quant = referenceConfig();
    quant.quant = Quantization::FP8;
    add_row("quant FP16 -> FP8", quant,
            "perf UP temp DOWN power DOWN quality DOWN");

    InstanceConfig narrow = referenceConfig();
    narrow.quant = Quantization::FP8; // TP2 feasibility
    narrow.tensorParallel = 2;
    InstanceConfig wide_fp8 = referenceConfig();
    wide_fp8.quant = Quantization::FP8;
    {
        // Compare TP2 against TP8 at the same FP8 precision.
        const auto tp8 = evaluate(perf.profile(wide_fp8));
        const auto tp2 = evaluate(perf.profile(narrow));
        table.addRow({"parallelism TP8 -> TP2",
                      arrow(tp2.perf - tp8.perf),
                      arrow(tp2.temp_proxy - tp8.temp_proxy),
                      arrow(tp2.power - tp8.power),
                      arrow(tp2.quality - tp8.quality),
                      "perf DOWN temp UP power DOWN quality same"});
    }

    InstanceConfig slow = referenceConfig();
    slow.freqFrac = 0.6;
    add_row("frequency 2GHz -> 1GHz", slow,
            "perf DOWN temp DOWN power DOWN quality same");

    InstanceConfig small_batch = referenceConfig();
    small_batch.maxBatchSize = 16;
    add_row("batch 64 -> 16", small_batch,
            "perf DOWN temp DOWN power DOWN quality same");

    table.print(std::cout);

    std::cout << "\nTemp proxy = mixed-phase per-GPU power at saturation "
                 "(temperature is linear in it, Eq. 2).\n"
              << "TP2's temp UP refers to the hottest GPU: fewer, "
                 "busier GPUs each run hotter while server\n"
              << "power falls.\n";
    return 0;
}
