/**
 * @file
 * Figure 13: diurnal periodicity of per-VM load and row power.
 *
 * Paper shape: an example VM shows a clearly periodic daily load over
 * four weeks; aggregated row power shows the same periodicity.
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"
#include "workload/vmtrace.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 13: diurnal load and row power");

    // Per-VM load periodicity straight from the trace generator.
    VmTraceConfig vm_cfg;
    vm_cfg.targetVmCount = 100;
    vm_cfg.horizon = 28 * kDay;
    VmTraceGenerator gen(vm_cfg, 23);
    const VmRecord *iaas = nullptr;
    for (const VmRecord &vm : gen.records()) {
        if (vm.kind == VmKind::IaaS && vm.lifetime() >= 28 * kDay) {
            iaas = &vm;
            break;
        }
    }
    if (!iaas) {
        for (const VmRecord &vm : gen.records()) {
            if (vm.kind == VmKind::IaaS) {
                iaas = &vm;
                break;
            }
        }
    }

    std::vector<double> load_series;
    for (SimTime t = 0; t < 28 * kDay; t += kHour)
        load_series.push_back(gen.iaasLoadAt(*iaas, t));
    std::cout << "Example IaaS VM over 28 days:\n";
    ConsoleTable vm_table({"metric", "paper shape", "measured"});
    vm_table.addRow(
        {"24h autocorrelation", "strong (periodic)",
         ConsoleTable::num(autocorrelation(load_series, 24), 2)});
    StatAccumulator acc;
    for (double v : load_series)
        acc.add(v);
    vm_table.addRow({"load range", "wide diurnal swing",
                     ConsoleTable::num(acc.min(), 2) + " - " +
                         ConsoleTable::num(acc.max(), 2)});
    vm_table.print(std::cout);

    // Row power periodicity from a week-long baseline simulation.
    SimConfig cfg = largeScaleScenario(13).asBaseline();
    ClusterSim sim(cfg);
    sim.run();
    std::vector<double> row_series;
    for (const KeyedSample &s :
         sim.telemetry().rowPowerSeries(RowId(0))) {
        row_series.push_back(s.value);
    }
    // Samples at 10-minute cadence: a day is 144 samples.
    std::cout << "\nRow 0 power over one week:\n";
    ConsoleTable row_table({"metric", "paper shape", "measured"});
    row_table.addRow(
        {"24h autocorrelation", "strong (periodic)",
         ConsoleTable::num(autocorrelation(row_series, 144), 2)});
    StatAccumulator racc;
    for (double v : row_series)
        racc.add(v);
    row_table.addRow(
        {"peak/trough ratio", "> 1 (diurnal)",
         ConsoleTable::num(racc.max() / std::max(1.0, racc.min()),
                           2)});
    row_table.print(std::cout);
    return 0;
}
