/**
 * @file
 * Microbenchmarks (google-benchmark) for the TAPAS decision
 * components: placement, routing, risk refresh, configuration
 * choice, and the ground-truth model evaluations. These bound the
 * control-plane overheads the paper's Section 4.5 claims are
 * lightweight.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/allocator.hh"
#include "core/configurator.hh"
#include "core/risk.hh"
#include "core/router.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "llm/engine.hh"
#include "telemetry/profiles.hh"

namespace {

using namespace tapas;

/** Shared medium-size fixture (480 servers). */
struct World
{
    World()
        : dc(makeLayout()), thermal(dc, ThermalConfig{}, 42),
          power(PowerConfig{}), cooling(dc, thermal),
          hierarchy(dc, power), bank(dc),
          perf(PerfModel::withReferenceSlo(
              ServerSpec::a100(), PerfParams::forSku(GpuSku::A100)))
    {
        bank.offlineProfile(thermal, power, 7);
        view.layout = &dc;
        view.cooling = &cooling;
        view.power = &hierarchy;
        view.profiles = &bank;
        view.outsideC = 26.0;
        view.dcLoadFrac = 0.6;
        view.serverLoads.assign(dc.serverCount(), 0.5);
        view.occupied.assign(dc.serverCount(), false);
        Rng rng(3);
        for (std::size_t s = 0; s < dc.serverCount(); s += 2) {
            PlacedVmView vm;
            vm.id = VmId(static_cast<std::uint32_t>(s));
            vm.kind = s % 4 == 0 ? VmKind::IaaS : VmKind::SaaS;
            vm.server = ServerId(static_cast<std::uint32_t>(s));
            vm.predictedPeakLoad = rng.uniform(0.4, 1.0);
            vm.currentLoad = rng.uniform(0.2, 0.9);
            view.vms.push_back(vm);
            view.occupied[s] = true;
        }
        gpuPower.assign(dc.serverCount() * 8, 200.0);
    }

    static LayoutConfig
    makeLayout()
    {
        LayoutConfig cfg;
        cfg.aisleCount = 6;
        cfg.rowsPerAisle = 2;
        cfg.racksPerRow = 10;
        cfg.serversPerRack = 4;
        return cfg;
    }

    DatacenterLayout dc;
    ThermalModel thermal;
    PowerModel power;
    CoolingPlant cooling;
    PowerHierarchy hierarchy;
    ProfileBank bank;
    PerfModel perf;
    ClusterView view;
    std::vector<double> gpuPower;
};

World &
world()
{
    static World instance;
    return instance;
}

void
BM_TapasPlacement(benchmark::State &state)
{
    World &w = world();
    TapasAllocator alloc{TapasPolicyConfig{}};
    PlacementRequest request;
    request.kind = VmKind::IaaS;
    request.predictedPeakLoad = 0.9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.place(request, w.view));
    }
}
BENCHMARK(BM_TapasPlacement);

void
BM_BaselinePlacement(benchmark::State &state)
{
    World &w = world();
    BaselineAllocator alloc;
    PlacementRequest request;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.place(request, w.view));
    }
}
BENCHMARK(BM_BaselinePlacement);

void
BM_RiskRefresh(benchmark::State &state)
{
    World &w = world();
    RiskAssessor assessor{TapasPolicyConfig{}};
    for (auto _ : state) {
        assessor.refresh(w.view, w.gpuPower);
        benchmark::DoNotOptimize(assessor.flaggedCount());
    }
}
BENCHMARK(BM_RiskRefresh);

void
BM_RouterDecision(benchmark::State &state)
{
    World &w = world();
    TapasRouter router{TapasPolicyConfig{}};
    const ConfigProfile profile =
        w.perf.profile(referenceConfig());
    std::vector<std::unique_ptr<InferenceEngine>> engines;
    std::vector<RouteCandidate> candidates;
    for (std::uint32_t i = 0; i < 50; ++i) {
        engines.push_back(std::make_unique<InferenceEngine>(
            profile, w.perf.slo()));
        candidates.push_back(
            {VmId(i), ServerId(i * 2), engines.back().get()});
    }
    Request request;
    request.customer = CustomerId(7);
    request.promptTokens = 512;
    request.outputTokens = 128;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            router.route(request, candidates, nullptr));
    }
}
BENCHMARK(BM_RouterDecision);

void
BM_ConfiguratorChoice(benchmark::State &state)
{
    World &w = world();
    InstanceConfigurator configurator(w.perf, TapasPolicyConfig{});
    const ConfigProfile current =
        w.perf.profile(referenceConfig());
    InstanceLimits limits;
    limits.maxServerPowerW = 5200.0;
    limits.maxGpuTempC = 77.0;
    limits.maxAirflowCfm = 1000.0;
    limits.inletC = 26.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(configurator.choose(
            ServerId(3), w.bank, limits, 2500.0, 0.999, current));
    }
}
BENCHMARK(BM_ConfiguratorChoice);

void
BM_InletModelEval(benchmark::State &state)
{
    World &w = world();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.thermal.inletTemperature(ServerId(5), Celsius(28.0),
                                       0.7, 0.02));
    }
}
BENCHMARK(BM_InletModelEval);

void
BM_FittedInletPrediction(benchmark::State &state)
{
    World &w = world();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            w.bank.predictInletC(ServerId(5), 28.0, 0.7));
    }
}
BENCHMARK(BM_FittedInletPrediction);

void
BM_EngineStepBusy(benchmark::State &state)
{
    World &w = world();
    const ConfigProfile profile =
        w.perf.profile(referenceConfig());
    for (auto _ : state) {
        state.PauseTiming();
        InferenceEngine engine(profile, w.perf.slo());
        Request request;
        request.promptTokens = 512;
        request.outputTokens = 128;
        for (std::uint32_t i = 0; i < 32; ++i) {
            request.id = RequestId(i);
            engine.enqueue(request);
        }
        state.ResumeTiming();
        engine.step(0.0, 60.0);
        benchmark::DoNotOptimize(engine.stats().completed);
    }
}
BENCHMARK(BM_EngineStepBusy);

} // namespace

BENCHMARK_MAIN();
