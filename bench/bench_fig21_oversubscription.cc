/**
 * @file
 * Figure 21: time under thermal/power capping versus datacenter
 * oversubscription (racks added beyond frozen cooling/power
 * provisioning).
 *
 * Paper shape: with no oversubscription neither policy gets capped;
 * Baseline starts capping hard past ~20% added racks; TAPAS holds
 * capping under 0.7% of time up to 40% oversubscription.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct CapResult
{
    double thermalFrac;
    double powerFrac;
};

CapResult
run(const SimConfig &cfg)
{
    ClusterSim sim(cfg);
    sim.run();
    return {sim.metrics().thermalCappedFraction(),
            sim.metrics().powerCappedFraction()};
}

} // namespace

int
main(int argc, char **argv)
{
    printBanner(std::cout,
                "Fig. 21: oversubscription vs capped time");
    const bool quick = argc > 1 &&
        std::string(argv[1]) == "--quick";

    SimConfig cfg = largeScaleScenario(7);
    cfg.horizon = quick ? kDay : 2 * kDay;

    ConsoleTable table({"oversub", "thermal base", "power base",
                        "thermal tapas", "power tapas"});
    for (int oversub : {0, 10, 20, 30, 40, 50}) {
        SimConfig level_cfg = cfg;
        level_cfg.oversubscriptionPct = oversub;
        const CapResult base = run(level_cfg.asBaseline());
        const CapResult tapas = run(level_cfg.asTapas());
        table.addRow(
            {oversub == 0 ? "None" : std::to_string(oversub) + "%",
             ConsoleTable::pct(base.thermalFrac, 2),
             ConsoleTable::pct(base.powerFrac, 2),
             ConsoleTable::pct(tapas.thermalFrac, 2),
             ConsoleTable::pct(tapas.powerFrac, 2)});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper shapes to check: None ~ no capping for either "
           "policy; Baseline capping\n"
        << "grows quickly past 20% added racks; TAPAS stays below "
           "~0.7% capped time through\n"
        << "40% oversubscription (safe oversubscription window "
           "+40%).\n";
    return 0;
}
