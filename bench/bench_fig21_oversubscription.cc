/**
 * @file
 * Figure 21: time under thermal/power capping versus datacenter
 * oversubscription (racks added beyond frozen cooling/power
 * provisioning).
 *
 * Paper shape: with no oversubscription neither policy gets capped;
 * Baseline starts capping hard past ~20% added racks; TAPAS holds
 * capping under 0.7% of time up to 40% oversubscription.
 *
 * The (policy x oversubscription) grid is built with the
 * ScenarioSweep helpers and fanned across the thread pool; results
 * are also emitted as `BENCH_fig21_oversubscription.json`.
 */

#include <iostream>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"

using namespace tapas;

int
main(int argc, char **argv)
{
    printBanner(std::cout,
                "Fig. 21: oversubscription vs capped time");
    const bool quick = argc > 1 &&
        std::string(argv[1]) == "--quick";

    SimConfig cfg = largeScaleScenario(7);
    cfg.horizon = quick ? kDay : 2 * kDay;

    const std::vector<int> levels = {0, 10, 20, 30, 40, 50};
    const std::vector<PolicyVariant> policies = {
        {"baseline", false, false, false},
        {"tapas", true, true, true},
    };
    const auto jobs = ScenarioSweep::crossOversubscription(
        ScenarioSweep::crossPolicies({{"fig21", cfg}}, policies),
        levels);

    ThreadPool pool;
    const auto outcomes = ScenarioSweep(pool).run(jobs);

    // Outcomes arrive in job order: policies x levels.
    auto outcome_at = [&](std::size_t policy, std::size_t level)
        -> const SweepOutcome & {
        return outcomes[policy * levels.size() + level];
    };

    ConsoleTable table({"oversub", "thermal base", "power base",
                        "thermal tapas", "power tapas"});
    for (std::size_t l = 0; l < levels.size(); ++l) {
        const SimMetrics &base = outcome_at(0, l).metrics;
        const SimMetrics &tapas = outcome_at(1, l).metrics;
        table.addRow(
            {levels[l] == 0 ? "None"
                            : std::to_string(levels[l]) + "%",
             ConsoleTable::pct(base.thermalCappedFraction(), 2),
             ConsoleTable::pct(base.powerCappedFraction(), 2),
             ConsoleTable::pct(tapas.thermalCappedFraction(), 2),
             ConsoleTable::pct(tapas.powerCappedFraction(), 2)});
    }
    table.print(std::cout);

    const std::string path = "BENCH_fig21_oversubscription.json";
    if (writeSweepBenchJson(path, "fig21_oversubscription",
                            quick ? "quick" : "full", outcomes)) {
        std::cout << "\nResults written to " << path << "\n";
    }

    std::cout
        << "\nPaper shapes to check: None ~ no capping for either "
           "policy; Baseline capping\n"
        << "grows quickly past 20% added racks; TAPAS stays below "
           "~0.7% capped time through\n"
        << "40% oversubscription (safe oversubscription window "
           "+40%).\n";
    return 0;
}
