/**
 * @file
 * Figure 11: distribution of aisle peak GPU temperature and row
 * power across 100K random VM placements of 80 VMs on two rows.
 *
 * Paper shape: worst placements exceed 85C while typical ones sit
 * near 72C; worst-case peak power is ~27% above the best; maximum
 * temperature and peak power are uncorrelated across placements, so
 * placement must consider both.
 */

#include <algorithm>
#include <iostream>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/threadpool.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 11: 100K random placements");

    LayoutConfig cfg;
    cfg.aisleCount = 1;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg); // 80 servers, 2 rows
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    PowerModel power{PowerConfig{}};

    // 60 VMs with heterogeneous peak loads onto 80 servers.
    const int vm_count = 60;
    Rng load_rng(99);
    std::vector<double> vm_loads;
    for (int i = 0; i < vm_count; ++i)
        vm_loads.push_back(load_rng.uniform(0.35, 1.0));

    // Worst-case planning conditions: a hot afternoon at high
    // datacenter load (the regime provisioning must survive).
    const Celsius outside(33.0);

    // Trials fan out across the pool in a fixed number of chunks,
    // each with its own seeded RNG stream, so the output is
    // deterministic regardless of thread count.
    const int trials = 100000;
    constexpr std::size_t kChunks = 64;
    struct ChunkStats
    {
        QuantileSample maxTemps;
        QuantileSample peakPowers;
        std::vector<double> tempSeries;
        std::vector<double> powerSeries;
    };
    std::vector<ChunkStats> chunk_stats(kChunks);

    ThreadPool pool;
    pool.parallelChunks(
        static_cast<std::size_t>(trials),
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            ChunkStats &stats = chunk_stats[chunk];
            Rng rng(mixSeed(99, chunk));
            std::vector<int> slots(dc.serverCount());
            for (std::size_t i = 0; i < slots.size(); ++i)
                slots[i] = static_cast<int>(i);

            for (std::size_t trial = begin; trial < end; ++trial) {
                // Fisher-Yates prefix shuffle: first vm_count slots.
                for (int i = 0; i < vm_count; ++i) {
                    const auto j = static_cast<std::size_t>(
                        rng.uniformInt(
                            i,
                            static_cast<std::int64_t>(slots.size()) -
                                1));
                    std::swap(slots[static_cast<std::size_t>(i)],
                              slots[j]);
                }

                double hottest = 0.0;
                double row_power[2] = {0.0, 0.0};
                for (int i = 0; i < vm_count; ++i) {
                    const ServerId sid(
                        static_cast<std::uint32_t>(slots[i]));
                    const double load =
                        vm_loads[static_cast<std::size_t>(i)];
                    const Server &server = dc.server(sid);
                    const ServerSpec &spec = dc.specOf(sid);
                    const Watts gpu_w = power.gpuPower(spec, load);
                    const double inlet =
                        thermal
                            .inletTemperature(sid, outside, 0.9, 0.0)
                            .value();
                    // Hottest GPU on the server (odd positions +
                    // tails).
                    for (int g = 0; g < spec.gpusPerServer; ++g) {
                        hottest = std::max(
                            hottest,
                            thermal
                                .gpuTemperature(sid, g,
                                                Celsius(inlet),
                                                gpu_w)
                                .value());
                    }
                    row_power[server.row.index] +=
                        power.serverPowerAtLoad(spec, load).value();
                }
                const double peak_row =
                    std::max(row_power[0], row_power[1]);
                stats.maxTemps.add(hottest);
                stats.peakPowers.add(peak_row);
                if (trial % 10 == 0) {
                    stats.tempSeries.push_back(hottest);
                    stats.powerSeries.push_back(peak_row);
                }
            }
        },
        kChunks);

    QuantileSample max_temps;
    QuantileSample peak_powers;
    std::vector<double> temp_series;
    std::vector<double> power_series;
    for (const ChunkStats &stats : chunk_stats) {
        for (double v : stats.maxTemps.raw())
            max_temps.add(v);
        for (double v : stats.peakPowers.raw())
            peak_powers.add(v);
        temp_series.insert(temp_series.end(),
                           stats.tempSeries.begin(),
                           stats.tempSeries.end());
        power_series.insert(power_series.end(),
                            stats.powerSeries.begin(),
                            stats.powerSeries.end());
    }

    ConsoleTable table({"metric", "paper shape", "measured"});
    table.addRow({"typical max temp", "~72 C",
                  ConsoleTable::num(max_temps.p50(), 1) + " C"});
    table.addRow({"worst max temp", "> 85 C",
                  ConsoleTable::num(max_temps.quantile(1.0), 1) +
                      " C"});
    const double power_span =
        peak_powers.quantile(1.0) / peak_powers.quantile(0.0) - 1.0;
    table.addRow({"worst/best peak power", "+27%",
                  ConsoleTable::pct(power_span)});
    const double corr =
        pearsonCorrelation(temp_series, power_series);
    table.addRow({"temp-power correlation", "~0 (uncorrelated)",
                  ConsoleTable::num(corr, 3)});
    table.print(std::cout);

    std::cout << "\nP99 max temp: "
              << ConsoleTable::num(max_temps.p99(), 1)
              << " C; P99 peak row power: "
              << ConsoleTable::num(peak_powers.p99() / 1000.0, 1)
              << " kW\n";
    return 0;
}
