/**
 * @file
 * Figure 11: distribution of aisle peak GPU temperature and row
 * power across 100K random VM placements of 80 VMs on two rows.
 *
 * Paper shape: worst placements exceed 85C while typical ones sit
 * near 72C; worst-case peak power is ~27% above the best; maximum
 * temperature and peak power are uncorrelated across placements, so
 * placement must consider both.
 */

#include <algorithm>
#include <iostream>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 11: 100K random placements");

    LayoutConfig cfg;
    cfg.aisleCount = 1;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg); // 80 servers, 2 rows
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    PowerModel power{PowerConfig{}};

    // 60 VMs with heterogeneous peak loads onto 80 servers.
    const int vm_count = 60;
    Rng rng(99);
    std::vector<double> vm_loads;
    for (int i = 0; i < vm_count; ++i)
        vm_loads.push_back(rng.uniform(0.35, 1.0));

    // Worst-case planning conditions: a hot afternoon at high
    // datacenter load (the regime provisioning must survive).
    const Celsius outside(33.0);
    QuantileSample max_temps;
    QuantileSample peak_powers;
    std::vector<double> temp_series;
    std::vector<double> power_series;

    std::vector<int> slots(dc.serverCount());
    for (std::size_t i = 0; i < slots.size(); ++i)
        slots[i] = static_cast<int>(i);

    const int trials = 100000;
    for (int trial = 0; trial < trials; ++trial) {
        // Fisher-Yates prefix shuffle: first vm_count slots.
        for (int i = 0; i < vm_count; ++i) {
            const auto j = static_cast<std::size_t>(rng.uniformInt(
                i, static_cast<std::int64_t>(slots.size()) - 1));
            std::swap(slots[static_cast<std::size_t>(i)], slots[j]);
        }

        double hottest = 0.0;
        double row_power[2] = {0.0, 0.0};
        for (int i = 0; i < vm_count; ++i) {
            const ServerId sid(
                static_cast<std::uint32_t>(slots[i]));
            const double load = vm_loads[static_cast<std::size_t>(i)];
            const Server &server = dc.server(sid);
            const ServerSpec &spec = dc.specOf(sid);
            const Watts gpu_w = power.gpuPower(spec, load);
            const double inlet =
                thermal.inletTemperature(sid, outside, 0.9, 0.0)
                    .value();
            // Hottest GPU on the server (odd positions + tails).
            for (int g = 0; g < spec.gpusPerServer; ++g) {
                hottest = std::max(
                    hottest,
                    thermal.gpuTemperature(sid, g, Celsius(inlet),
                                           gpu_w).value());
            }
            row_power[server.row.index] +=
                power.serverPowerAtLoad(spec, load).value();
        }
        const double peak_row = std::max(row_power[0], row_power[1]);
        max_temps.add(hottest);
        peak_powers.add(peak_row);
        if (trial % 10 == 0) {
            temp_series.push_back(hottest);
            power_series.push_back(peak_row);
        }
    }

    ConsoleTable table({"metric", "paper shape", "measured"});
    table.addRow({"typical max temp", "~72 C",
                  ConsoleTable::num(max_temps.p50(), 1) + " C"});
    table.addRow({"worst max temp", "> 85 C",
                  ConsoleTable::num(max_temps.quantile(1.0), 1) +
                      " C"});
    const double power_span =
        peak_powers.quantile(1.0) / peak_powers.quantile(0.0) - 1.0;
    table.addRow({"worst/best peak power", "+27%",
                  ConsoleTable::pct(power_span)});
    const double corr =
        pearsonCorrelation(temp_series, power_series);
    table.addRow({"temp-power correlation", "~0 (uncorrelated)",
                  ConsoleTable::num(corr, 3)});
    table.print(std::cout);

    std::cout << "\nP99 max temp: "
              << ConsoleTable::num(max_temps.p99(), 1)
              << " C; P99 peak row power: "
              << ConsoleTable::num(peak_powers.p99() / 1000.0, 1)
              << " kW\n";
    return 0;
}
