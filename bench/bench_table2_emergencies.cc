/**
 * @file
 * Table 2: behavior under power (UPS, budgets to 75%) and thermal
 * (AHU, airflow to 90%) emergencies during a peak-load period.
 *
 * Paper shape (Baseline vs TAPAS):
 *   Power emergency: Baseline IaaS -35% / SaaS -28% performance at
 *   zero quality cost (uniform frequency caps); TAPAS holds IaaS at
 *   ~0%, improves SaaS throughput (+16%) and pays up to -12%
 *   quality by steering work to smaller/quantized models.
 *   Thermal emergency: Baseline -22%/-19%; TAPAS 0%/+10% at -6%
 *   quality.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct EmergencyResult
{
    /** Mean IaaS frequency-cap deficit during the emergency. */
    double iaasPerf;
    /** SaaS served tokens during emergency vs the pre-window. */
    double saasPerfDelta;
    /** Mean SaaS quality during the emergency. */
    double quality;
};

/** Mean of a series over [from, to). */
double
windowMean(const TimeSeries &series, SimTime from, SimTime to)
{
    double total = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const SimTime t = series.timeAt(i);
        if (t >= from && t < to) {
            total += series.valueAt(i);
            ++n;
        }
    }
    return n ? total / n : 0.0;
}

EmergencyResult
run(SimConfig cfg, bool thermal)
{
    // One day; the emergency covers the demand peak hours. SaaS
    // performance is normalized against an identical run WITHOUT
    // the failure (removing the diurnal trend from the comparison).
    cfg.horizon = kDay;
    FailureEvent event;
    event.at = 12 * kHour;
    event.until = 16 * kHour;
    event.thermal = thermal;
    event.remainingFrac = thermal ? 0.90 : 0.75;

    ClusterSim control(cfg);
    control.run();

    SimConfig failed_cfg = cfg;
    failed_cfg.failures.push_back(event);
    ClusterSim sim(failed_cfg);
    sim.run();

    const SimTime from = event.at + 30 * kMinute;
    const SimTime to = event.until;
    const double served =
        windowMean(sim.metrics().saasServedTps, from, to);
    const double served_control =
        windowMean(control.metrics().saasServedTps, from, to);

    EmergencyResult out{};
    out.saasPerfDelta = served_control > 0.0
        ? served / served_control - 1.0
        : 0.0;
    out.quality =
        windowMean(sim.metrics().saasQuality, from, to);
    out.iaasPerf =
        -windowMean(sim.metrics().iaasPerfPenalty, from, to);
    return out;
}

} // namespace

int
main()
{
    printBanner(std::cout, "Table 2: emergency management");

    const SimConfig cfg = largeScaleScenario(7);

    ConsoleTable table({"emergency", "policy", "IaaS perf",
                        "SaaS perf", "SaaS quality", "paper"});
    for (bool thermal : {false, true}) {
        const char *kind = thermal ? "Thermal (AHU, 90%)"
                                   : "Power (UPS, 75%)";
        const EmergencyResult base =
            run(cfg.asBaseline(), thermal);
        const EmergencyResult tapas = run(cfg.asTapas(), thermal);
        table.addRow(
            {kind, "Baseline", ConsoleTable::pct(base.iaasPerf),
             ConsoleTable::pct(base.saasPerfDelta),
             ConsoleTable::num(base.quality, 3),
             thermal ? "-22%/-19%, qual 0%" : "-35%/-28%, qual 0%"});
        table.addRow(
            {kind, "TAPAS", ConsoleTable::pct(tapas.iaasPerf),
             ConsoleTable::pct(tapas.saasPerfDelta),
             ConsoleTable::num(tapas.quality, 3),
             thermal ? "0%/+10%, qual -6%" : "0%/+16%, qual -12%"});
    }
    table.print(std::cout);

    std::cout
        << "\nIaaS perf = mean frequency-cap deficit during the "
           "emergency (0% = never capped).\n"
        << "SaaS perf = served token rate versus the pre-emergency "
           "peak window.\n"
        << "Paper shape: Baseline takes uniform frequency caps "
           "(both columns negative, quality\n"
        << "untouched); TAPAS spares IaaS, maintains or improves "
           "SaaS throughput, and pays a\n"
        << "bounded quality cost by shifting load to smaller/"
           "quantized models.\n";
    return 0;
}
