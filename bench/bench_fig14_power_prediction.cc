/**
 * @file
 * Figure 14: row- and customer-based power prediction error CDFs
 * using quantile templates.
 *
 * Paper shape: row-based prediction errs under 10% for most row-
 * hours, with P99 templates underpredicting for <4% of row-hours;
 * customer-based per-VM prediction errs below 10% for >75% of
 * VM-hours with small underprediction rates at P90/P99.
 */

#include <cmath>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"
#include "telemetry/templates.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 14: template power prediction");

    // Four-week baseline run: build templates from the first three
    // weeks (the paper trains on production-scale history), score
    // predictions against the final week.
    SimConfig cfg = largeScaleScenario(29).asBaseline();
    cfg.horizon = 4 * kWeek;
    ClusterSim sim(cfg);
    sim.run();

    const TelemetryStore &store = sim.telemetry();

    // Split history at the week boundary.
    TelemetryStore train;
    for (RowId row : store.rowsWithData()) {
        for (const KeyedSample &s : store.rowPowerSeries(row)) {
            if (s.time < 3 * kWeek)
                train.recordRowPower(row, s.time, s.value);
        }
    }
    for (CustomerId customer : store.customersWithData()) {
        for (const KeyedSample &s :
             store.customerVmPowerSeries(customer)) {
            if (s.time < 3 * kWeek) {
                train.recordCustomerVmPower(customer, s.time,
                                            s.value);
            }
        }
    }
    const PowerTemplates templates =
        PowerTemplates::build(train, TemplateQuantiles{});

    // Row-based errors over week 2.
    QuantileSample row_abs_err;
    int row_hours = 0;
    int row_under_p99 = 0;
    for (RowId row : store.rowsWithData()) {
        if (!templates.hasRow(row))
            continue;
        for (const KeyedSample &s : store.rowPowerSeries(row)) {
            if (s.time < 3 * kWeek || s.time % kHour != 0)
                continue;
            const double p50 = templates.predictRow(
                row, s.time, PowerTemplates::Level::P50);
            row_abs_err.add(std::abs(p50 - s.value) /
                            std::max(1.0, double(s.value)));
            const double p99 = templates.predictRow(
                row, s.time, PowerTemplates::Level::P99);
            if (s.value > p99)
                ++row_under_p99;
            ++row_hours;
        }
    }

    ConsoleTable row_table({"metric", "paper", "measured"});
    row_table.addRow(
        {"|error| < 10% of row-hours (P50 tmpl)", "most",
         ConsoleTable::pct(row_abs_err.count()
                               ? static_cast<double>(std::count_if(
                                     row_abs_err.raw().begin(),
                                     row_abs_err.raw().end(),
                                     [](double e) {
                                         return e < 0.10;
                                     })) /
                                   row_abs_err.count()
                               : 0.0)});
    row_table.addRow(
        {"P99 template underpredicts", "< 4% of row-hours",
         ConsoleTable::pct(row_hours
                               ? static_cast<double>(row_under_p99) /
                                   row_hours
                               : 0.0)});
    std::cout << "Row-based prediction (" << row_hours
              << " row-hours):\n";
    row_table.print(std::cout);

    // Customer-based per-VM errors over week 2.
    QuantileSample cust_err;
    int vm_hours = 0;
    int under_p90 = 0;
    int under_p99 = 0;
    for (CustomerId customer : store.customersWithData()) {
        if (!templates.hasCustomer(customer))
            continue;
        for (const KeyedSample &s :
             store.customerVmPowerSeries(customer)) {
            if (s.time < 3 * kWeek || s.time % kHour != 0)
                continue;
            const double p50 = templates.predictCustomerVm(
                customer, s.time, PowerTemplates::Level::P50);
            cust_err.add(std::abs(p50 - s.value) /
                         std::max(1.0, double(s.value)));
            if (s.value > templates.predictCustomerVm(
                    customer, s.time, PowerTemplates::Level::P90)) {
                ++under_p90;
            }
            if (s.value > templates.predictCustomerVm(
                    customer, s.time, PowerTemplates::Level::P99)) {
                ++under_p99;
            }
            ++vm_hours;
        }
    }

    std::cout << "\nCustomer-based per-VM prediction (" << vm_hours
              << " VM-hours):\n";
    ConsoleTable cust_table({"metric", "paper", "measured"});
    cust_table.addRow(
        {"|error| < 10% of VM-hours (P50 tmpl)", "> 75%",
         ConsoleTable::pct(cust_err.count()
                               ? static_cast<double>(std::count_if(
                                     cust_err.raw().begin(),
                                     cust_err.raw().end(),
                                     [](double e) {
                                         return e < 0.10;
                                     })) /
                                   cust_err.count()
                               : 0.0)});
    cust_table.addRow(
        {"P90 template underpredicts", "2-7%",
         ConsoleTable::pct(vm_hours ? static_cast<double>(under_p90) /
                                        vm_hours
                                    : 0.0)});
    cust_table.addRow(
        {"P99 template underpredicts", "~2%",
         ConsoleTable::pct(vm_hours ? static_cast<double>(under_p99) /
                                        vm_hours
                                    : 0.0)});
    cust_table.print(std::cout);
    return 0;
}
