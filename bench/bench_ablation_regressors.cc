/**
 * @file
 * Ablation: regression-family selection for the thermal models
 * (paper Section 5.1). The paper evaluated random forests, MLPs,
 * linear, polynomial, and piecewise polynomial regressions and chose
 * piecewise polynomial: MAE < 1C, fast, compact, and able to
 * generalize below the training range (forests cannot).
 *
 * This bench fits each implemented family to the same noisy inlet
 * observations and scores in-range accuracy, extrapolation accuracy,
 * and fit/predict cost.
 */

#include <chrono>
#include <iostream>

#include "common/random.hh"
#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/thermal.hh"
#include "telemetry/regression.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout,
                "Ablation: thermal regression model selection");

    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 1;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 3;
    layout_cfg.serversPerRack = 4;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    const ServerId sid(5);

    // The paper's GPU-temperature regression (Eq. 2). Production
    // telemetry only covers a busy fleet: inlets 18-30C, GPU power
    // 180-400W. The extrapolation question is the one operators
    // actually ask — what happens at LIGHT load (60-150W), i.e.
    // temperatures below anything in the training set.
    Rng rng(9);
    std::vector<std::vector<double>> X;
    std::vector<double> y;
    for (int i = 0; i < 4000; ++i) {
        const double inlet = rng.uniform(18.0, 30.0);
        const double watts = rng.uniform(180.0, 400.0);
        X.push_back({inlet, watts});
        y.push_back(thermal
                        .gpuTemperature(sid, 0, Celsius(inlet),
                                        Watts(watts))
                        .value() +
                    rng.gaussian(0.0, 0.3));
    }

    auto truth = [&](double inlet, double watts) {
        return thermal
            .gpuTemperature(sid, 0, Celsius(inlet), Watts(watts))
            .value();
    };
    auto score = [&](auto predict, double lo, double hi) {
        std::vector<double> t;
        std::vector<double> p;
        for (double watts = lo; watts <= hi; watts += 10.0) {
            for (double inlet : {19.0, 22.0, 26.0, 29.0}) {
                t.push_back(truth(inlet, watts));
                p.push_back(predict(inlet, watts));
            }
        }
        return meanAbsoluteError(t, p);
    };

    using Clock = std::chrono::steady_clock;

    ConsoleTable table({"family", "in-range MAE (C)",
                        "extrapolation MAE (C)", "fit ms",
                        "paper verdict"});

    {
        const auto t0 = Clock::now();
        LinearRegression model;
        model.fit(X, y);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        auto predict = [&](double o, double l) {
            return model.predict({o, l});
        };
        table.addRow({"linear (chosen for Eq. 2)",
                      ConsoleTable::num(score(predict, 180, 400), 3),
                      ConsoleTable::num(score(predict, 60, 150), 3),
                      ConsoleTable::num(ms, 1),
                      "exact: truth is linear"});
    }
    {
        const auto t0 = Clock::now();
        // Polynomial on outside temp (degree 3) + linear load term
        // via the piecewise machinery with no knots on feature 0
        // is equivalent to plain linear; use a cubic single-feature
        // fit at fixed load bands instead (the family's idiom).
        // Cubic on power with the inlet term removed (truth adds
        // inlet linearly with unit slope).
        PolynomialRegression model(3);
        std::vector<double> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < X.size(); ++i) {
            xs.push_back(X[i][1]);
            ys.push_back(y[i] - X[i][0]);
        }
        model.fit(xs, ys);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        auto predict = [&](double o, double l) {
            return model.predict(l) + o;
        };
        table.addRow({"polynomial (deg 3)",
                      ConsoleTable::num(score(predict, 180, 400), 3),
                      ConsoleTable::num(score(predict, 60, 150), 3),
                      ConsoleTable::num(ms, 1),
                      "ok in-range, drifts outside"});
    }
    {
        const auto t0 = Clock::now();
        PiecewiseLinearModel model({250.0, 330.0}, 1);
        // Feature 0 = power (knots there), feature 1 = inlet.
        std::vector<std::vector<double>> swapped;
        swapped.reserve(X.size());
        for (const auto &row : X)
            swapped.push_back({row[1], row[0]});
        model.fit(swapped, y);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        auto predict = [&](double o, double l) {
            return model.predict({l, o});
        };
        table.addRow({"piecewise polynomial",
                      ConsoleTable::num(score(predict, 180, 400), 3),
                      ConsoleTable::num(score(predict, 60, 150), 3),
                      ConsoleTable::num(ms, 1),
                      "CHOSEN for Eq. 1: MAE < 1C, generalizes"});
    }
    {
        const auto t0 = Clock::now();
        RandomForest model(30, 8, 5, 7);
        model.fit(X, y);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        auto predict = [&](double o, double l) {
            return model.predict({o, l});
        };
        table.addRow(
            {"random forest",
             ConsoleTable::num(score(predict, 180, 400), 3),
             ConsoleTable::num(score(predict, 60, 150), 3),
             ConsoleTable::num(ms, 1),
             "overfits; cannot predict below training range"});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper: piecewise polynomial achieved MAE < 1 C with "
           "fast computation, efficient\nstorage, and effective "
           "generalization for unseen values; random forests tend "
           "to\noverfit and struggle to predict temperatures lower "
           "than those in the training set.\n";
    return 0;
}
