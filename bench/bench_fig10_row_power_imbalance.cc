/**
 * @file
 * Figure 10: row power utilization timelines and the heavy-tailed
 * P50/P99 row power distribution under baseline placement.
 *
 * Paper shape: a few rows draw significantly more than the rest;
 * 50%, 75%, and 90% of rows draw 28%, 18%, and 10% less P99 power
 * than the most power-hungry row.
 */

#include <algorithm>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 10: row power imbalance (baseline)");

    SimConfig cfg = largeScaleScenario(11).asBaseline();
    ClusterSim sim(cfg);
    sim.run();

    // Reconstruct per-row power series from the telemetry store.
    const DatacenterLayout &dc = sim.datacenter();
    std::vector<double> p99(dc.rowCount(), 0.0);
    std::vector<double> p50(dc.rowCount(), 0.0);
    for (const Row &row : dc.rows()) {
        QuantileSample sample;
        for (const KeyedSample &s :
             sim.telemetry().rowPowerSeries(row.id)) {
            sample.add(s.value);
        }
        if (sample.count() == 0)
            continue;
        p99[row.id.index] = sample.p99();
        p50[row.id.index] = sample.p50();
    }

    // Sample timelines for four rows (Fig. 10a).
    std::cout << "Normalized row power at local noon each day "
                 "(4 sample rows):\n";
    ConsoleTable timeline({"day", "row0", "row4", "row8", "row11"});
    const double max_p99 = *std::max_element(p99.begin(), p99.end());
    for (int day = 0; day < 7; ++day) {
        std::vector<std::string> cells = {std::to_string(day + 1)};
        for (std::uint32_t r : {0u, 4u, 8u, 11u}) {
            double value = 0.0;
            for (const KeyedSample &s :
                 sim.telemetry().rowPowerSeries(RowId(r))) {
                if (s.time == day * kDay + 12 * kHour)
                    value = s.value;
            }
            cells.push_back(ConsoleTable::num(value / max_p99, 2));
        }
        timeline.addRow(cells);
    }
    timeline.print(std::cout);

    // Heavy-tail CDF (Fig. 10b).
    std::vector<double> sorted = p99;
    std::sort(sorted.begin(), sorted.end());
    auto tail_gap = [&](double frac) {
        const auto idx = static_cast<std::size_t>(
            frac * static_cast<double>(sorted.size() - 1));
        return 1.0 - sorted[idx] / max_p99;
    };

    std::cout << "\nP99 row power versus the hungriest row:\n";
    ConsoleTable tail({"rows at or below", "paper draw-less",
                       "measured draw-less"});
    tail.addRow({"50%", "28%", ConsoleTable::pct(tail_gap(0.50))});
    tail.addRow({"75%", "18%", ConsoleTable::pct(tail_gap(0.75))});
    tail.addRow({"90%", "10%", ConsoleTable::pct(tail_gap(0.90))});
    tail.print(std::cout);

    QuantileSample p50s;
    for (double v : p50)
        p50s.add(v);
    std::cout << "\nMedian row P50 / max row P99 = "
              << ConsoleTable::num(p50s.p50() / max_p99, 2)
              << " (heavy diurnal multiplexing headroom)\n";
    return 0;
}
