/**
 * @file
 * Figures 6-7: GPU temperature versus inlet temperature and GPU
 * power, and the fitted regression quality.
 *
 * Paper shape: GPU temperature is well explained by a regression on
 * inlet temperature and GPU load with MAE below 1C; the model also
 * underlies every TAPAS projection.
 */

#include <iostream>

#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "telemetry/profiles.hh"
#include "telemetry/regression.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout,
                "Fig. 6+7: GPU temperature regression (Eq. 2)");

    LayoutConfig cfg;
    cfg.aisleCount = 2;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    PowerModel power{PowerConfig{}};

    // Example server: GPU temp at varying inlet/power (Fig. 7).
    const ServerId sid(12);
    ConsoleTable table({"inlet C", "gpu @100W", "gpu @250W",
                        "gpu @400W", "mem @400W decode"});
    for (double inlet : {18.0, 22.0, 26.0, 30.0}) {
        table.addRow(
            {ConsoleTable::num(inlet, 0),
             ConsoleTable::num(
                 thermal.gpuTemperature(sid, 0, Celsius(inlet),
                                        Watts(100)).value(), 1),
             ConsoleTable::num(
                 thermal.gpuTemperature(sid, 0, Celsius(inlet),
                                        Watts(250)).value(), 1),
             ConsoleTable::num(
                 thermal.gpuTemperature(sid, 0, Celsius(inlet),
                                        Watts(400)).value(), 1),
             ConsoleTable::num(
                 thermal.memTemperature(sid, 0, Celsius(inlet),
                                        Watts(400), 0.85).value(),
                 1)});
    }
    table.print(std::cout);

    // Offline-profiled fit accuracy across the whole fleet.
    ProfileBank bank(dc);
    bank.offlineProfile(thermal, power, 7);

    std::vector<double> truth;
    std::vector<double> pred;
    for (const Server &server : dc.servers()) {
        for (int g = 0; g < 8; ++g) {
            for (double inlet : {19.0, 23.5, 28.0}) {
                for (double watts : {80.0, 210.0, 380.0}) {
                    truth.push_back(
                        thermal
                            .gpuTemperature(server.id, g,
                                            Celsius(inlet),
                                            Watts(watts))
                            .value());
                    pred.push_back(bank.predictGpuTempC(
                        server.id, g, inlet, watts));
                }
            }
        }
    }
    const double mae = meanAbsoluteError(truth, pred);
    std::cout << "\nFleet-wide fitted-model MAE: "
              << ConsoleTable::num(mae, 3)
              << " C  (paper: < 1 C)  "
              << (mae < 1.0 ? "[OK]" : "[MISS]") << "\n";
    return 0;
}
