/**
 * @file
 * Figures 8-9: per-GPU temperature heterogeneity.
 *
 * Paper shape: GPUs within one server spread up to ~10C at identical
 * inlet and utilization; across 3000+ GPUs at high load the range
 * exceeds 20C; even-indexed GPUs (closer to the inlet) run cooler
 * than odd-indexed ones.
 */

#include <algorithm>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 8+9: per-GPU heterogeneity");

    LayoutConfig cfg;
    cfg.aisleCount = 5;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg); // 400 servers -> 3200 GPUs
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    PowerModel power{PowerConfig{}};

    const Watts high_load =
        power.gpuPower(dc.specOf(ServerId(0)), 0.95);
    const Celsius inlet(24.0);

    // One example server (Fig. 8).
    std::cout << "Example server, all 8 GPUs at equal load:\n";
    ConsoleTable one({"gpu", "temp C"});
    const ServerId example(7);
    for (int g = 0; g < 8; ++g) {
        one.addRow({"GPU" + std::to_string(g + 1),
                    ConsoleTable::num(
                        thermal.gpuTemperature(example, g, inlet,
                                               high_load).value(),
                        1)});
    }
    one.print(std::cout);

    // Fleet-wide distribution (Fig. 9).
    QuantileSample all;
    StatAccumulator per_position[8];
    StatAccumulator intra_spread;
    for (const Server &server : dc.servers()) {
        double lo = 1e9;
        double hi = -1e9;
        for (int g = 0; g < 8; ++g) {
            const double t =
                thermal.gpuTemperature(server.id, g, inlet,
                                       high_load).value();
            all.add(t);
            per_position[g].add(t);
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        intra_spread.add(hi - lo);
    }

    std::cout << "\nFleet of " << all.count()
              << " GPUs at high load, equal inlet:\n";
    ConsoleTable dist({"metric", "paper shape", "measured"});
    dist.addRow({"fleet range (P0-P100)", "> 20 C",
                 ConsoleTable::num(all.quantile(1.0) -
                                   all.quantile(0.0), 1) + " C"});
    dist.addRow({"max intra-server spread", "up to ~10 C",
                 ConsoleTable::num(intra_spread.max(), 1) + " C"});
    dist.addRow({"mean intra-server spread", "-",
                 ConsoleTable::num(intra_spread.mean(), 1) + " C"});
    dist.print(std::cout);

    std::cout << "\nMedian temperature by GPU position "
                 "(even = closer to inlet, cooler):\n";
    ConsoleTable pos({"gpu", "median C"});
    for (int g = 0; g < 8; ++g) {
        pos.addRow({"GPU" + std::to_string(g + 1),
                    ConsoleTable::num(per_position[g].mean(), 1)});
    }
    pos.print(std::cout);

    double even = 0.0;
    double odd = 0.0;
    for (int g = 0; g < 8; g += 2) {
        even += per_position[g].mean() / 4.0;
        odd += per_position[g + 1].mean() / 4.0;
    }
    std::cout << "\nOdd-minus-even mean gap: "
              << ConsoleTable::num(odd - even, 1)
              << " C (paper: even GPUs visibly cooler)\n";
    return 0;
}
