/**
 * @file
 * Figure 18: the real-cluster experiment — 80 servers in two rows,
 * one hour at 1-minute resolution, request-level fidelity.
 *
 * Paper shape: TAPAS's peak row power sits visibly below Baseline's
 * throughout the hour (paper: ~20% lower peak utilization) while
 * latency SLOs and result quality hold. The paper validates its
 * simulator against this experiment with ~4% absolute error; we
 * repeat that cross-check against the flow-level mode.
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct RunResult
{
    SimMetrics metrics;
    double peakPowerFrac;
    double meanPowerFrac;
};

RunResult
run(const SimConfig &cfg)
{
    ClusterSim sim(cfg);
    sim.run();
    RunResult out{sim.metrics(),
                  sim.metrics().peakRowPowerFrac.maxValue(),
                  sim.metrics().peakRowPowerFrac.mean()};
    return out;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 18: real cluster, 1 hour, 80 servers");

    const SimConfig base_cfg = realClusterScenario(7);
    const RunResult baseline = run(base_cfg.asBaseline());
    const RunResult tapas = run(base_cfg.asTapas());

    // Timeline of normalized peak row power at 10-minute marks.
    std::cout << "Normalized peak row power over the hour:\n";
    ConsoleTable timeline({"minute", "baseline", "tapas"});
    const auto &bseries = baseline.metrics.peakRowPowerFrac;
    const auto &tseries = tapas.metrics.peakRowPowerFrac;
    for (std::size_t i = 0; i < bseries.size(); i += 10) {
        timeline.addRow(
            {std::to_string(bseries.timeAt(i) / kMinute),
             ConsoleTable::num(bseries.valueAt(i), 3),
             ConsoleTable::num(tseries.valueAt(i), 3)});
    }
    timeline.print(std::cout);

    const double peak_reduction =
        1.0 - tapas.peakPowerFrac / baseline.peakPowerFrac;
    const double mean_reduction =
        1.0 - tapas.meanPowerFrac / baseline.meanPowerFrac;

    std::cout << "\nSummary:\n";
    ConsoleTable summary({"metric", "baseline", "tapas", "paper"});
    summary.addRow({"peak row power (frac of provision)",
                    ConsoleTable::num(baseline.peakPowerFrac, 3),
                    ConsoleTable::num(tapas.peakPowerFrac, 3),
                    "-20% peak"});
    summary.addRow({"peak reduction", "-",
                    ConsoleTable::pct(peak_reduction), "~20%"});
    summary.addRow({"mean peak-row reduction", "-",
                    ConsoleTable::pct(mean_reduction), "-"});
    summary.addRow({"P99 TTFT (s)",
                    ConsoleTable::num(
                        baseline.metrics.ttftS.p99(), 2),
                    ConsoleTable::num(tapas.metrics.ttftS.p99(), 2),
                    "SLOs maintained"});
    summary.addRow({"SLO attainment",
                    ConsoleTable::pct(
                        baseline.metrics.sloAttainment()),
                    ConsoleTable::pct(
                        tapas.metrics.sloAttainment()),
                    "maintained"});
    summary.addRow({"mean quality",
                    ConsoleTable::num(
                        baseline.metrics.meanQuality(), 3),
                    ConsoleTable::num(tapas.metrics.meanQuality(),
                                      3),
                    "unchanged (1.0)"});
    summary.print(std::cout);

    // Simulator cross-validation (paper: 4% absolute error between
    // the real cluster and the simulator).
    SimConfig flow_cfg = base_cfg.asTapas();
    flow_cfg.mode = SimMode::FlowLevel;
    const RunResult flow = run(flow_cfg);
    const double sim_error =
        std::abs(flow.peakPowerFrac - tapas.peakPowerFrac);
    std::cout << "\nRequest-level vs flow-level cross-check "
                 "(paper: ~4% absolute): "
              << ConsoleTable::pct(sim_error) << " absolute on peak "
              << "row power fraction\n";
    return 0;
}
