/**
 * @file
 * Step-loop micro-benchmark: steps/second of the ClusterSim hot path
 * for small/medium/large layouts, emitted as `BENCH_step_loop.json`.
 *
 * This is the perf trajectory anchor for the simulator: run it before
 * and after a hot-path change and compare `steps_per_s`. `--smoke`
 * runs a shortened version suitable for CI gates.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "common/timer.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct LayoutCase
{
    const char *name;
    int aisles;
    int rowsPerAisle;
    int racksPerRow;
    int serversPerRack;
    /** Timed steps in full mode (smoke mode divides by 10). */
    int steps;
};

SimConfig
benchScenario(const LayoutCase &lc)
{
    SimConfig cfg = smallTestScenario(7);
    cfg.layout.aisleCount = lc.aisles;
    cfg.layout.rowsPerAisle = lc.rowsPerAisle;
    cfg.layout.racksPerRow = lc.racksPerRow;
    cfg.layout.serversPerRack = lc.serversPerRack;
    cfg.layout.upsCount = 4;
    cfg.vmTrace.endpointCount = 10;
    cfg.mode = SimMode::FlowLevel;
    cfg.stepLength = 5 * kMinute;
    cfg.horizon = kWeek; // never reached; we drive steps manually
    return cfg.asTapas();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printBanner(std::cout, "Step-loop throughput (steps/second)");

    const LayoutCase cases[] = {
        // 40 / 320 / 960 servers; "large" is the paper's Fig. 19
        // week-long large-scale setup.
        {"small", 1, 2, 5, 4, 2000},
        {"medium", 4, 2, 10, 4, 500},
        {"large", 12, 2, 10, 4, 150},
    };

    ConsoleTable table(
        {"layout", "servers", "steps", "wall (s)", "steps/s"});
    std::vector<BenchCase> results;

    for (const LayoutCase &lc : cases) {
        const SimConfig cfg = benchScenario(lc);
        ClusterSim sim(cfg);

        // Warm up past the initial placement wave so the timed window
        // measures the steady-state step loop.
        const int timed = smoke ? lc.steps / 10 : lc.steps;
        const int warmup = timed / 5 + 5;
        sim.runSteps(warmup);

        WallTimer timer;
        sim.runSteps(timed);
        const double wall = timer.elapsedS();
        const double rate = timed / wall;
        const double servers =
            static_cast<double>(sim.datacenter().serverCount());

        table.addRow({lc.name, ConsoleTable::num(servers, 0),
                      ConsoleTable::num(timed, 0),
                      ConsoleTable::num(wall, 3),
                      ConsoleTable::num(rate, 1)});

        BenchCase result;
        result.name = lc.name;
        result.set("servers", servers);
        result.set("steps", timed);
        result.set("wall_s", wall);
        result.set("steps_per_s", rate);
        results.push_back(result);
    }

    table.print(std::cout);
    const std::string path = "BENCH_step_loop.json";
    if (writeBenchJson(path, "step_loop", smoke ? "smoke" : "full",
                       results)) {
        std::cout << "\nResults written to " << path << "\n";
    }
    return 0;
}
