/**
 * @file
 * Step-loop micro-benchmark: steps/second of the ClusterSim hot path
 * for small/medium/large layouts, plus sim construction time (the
 * offline profile refits dominate startup at fleet scale), emitted
 * as `BENCH_step_loop.json`.
 *
 * This is the perf trajectory anchor for the simulator: run it before
 * and after a hot-path change and compare `steps_per_s`. `--smoke`
 * runs a shortened version; `--check <committed.json>` exits
 * non-zero when any layout's steps/s regresses more than 20%
 * against the committed baseline (the scripts/check.sh CI gate).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table.hh"
#include "common/timer.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

/**
 * Regression tolerance of the --check gate. Sized to the bench
 * host, not the code: on the shared (hypervisor-oversubscribed)
 * machine the baselines come from, sustained contention degrades
 * even process-CPU-time rates up to ~40% for a whole run (context
 * switches refill caches on the benchmark's dime), and a gate
 * tighter than that flakes on load it cannot see. Real hot-path
 * regressions this project chases have been step-function (1.3-3x),
 * which this still catches; compare quiet-run medians by hand when
 * hunting smaller movements.
 */
constexpr double kCheckTolerance = 0.45;

struct LayoutCase
{
    const char *name;
    int aisles;
    int rowsPerAisle;
    int racksPerRow;
    int serversPerRack;
    /** Timed steps in full mode (smoke mode divides by 10). */
    int steps;
};

SimConfig
benchScenario(const LayoutCase &lc)
{
    SimConfig cfg = smallTestScenario(7);
    cfg.layout.aisleCount = lc.aisles;
    cfg.layout.rowsPerAisle = lc.rowsPerAisle;
    cfg.layout.racksPerRow = lc.racksPerRow;
    cfg.layout.serversPerRack = lc.serversPerRack;
    cfg.layout.upsCount = 4;
    cfg.vmTrace.endpointCount = 10;
    cfg.mode = SimMode::FlowLevel;
    cfg.stepLength = 5 * kMinute;
    // Far past any case's warmup + timed + phase-timed windows:
    // runSteps() no-ops once the horizon is reached, which would
    // silently truncate a window and overstate its steps/s (the
    // small case used to lose ~20% of its timed steps to this).
    cfg.horizon = 52 * kWeek;
    return cfg.asTapas();
}

/**
 * Extract the value of @p key inside the case object named
 * @p case_name from a BENCH_*.json file (the flat format written by
 * writeBenchJson; no general JSON parsing needed).
 */
[[maybe_unused]] bool
lookupBenchValue(const std::string &json, const std::string &case_name,
                 const std::string &key, double &out)
{
    const std::string name_tag = "\"name\": \"" + case_name + "\"";
    const std::size_t case_at = json.find(name_tag);
    if (case_at == std::string::npos)
        return false;
    const std::size_t case_end = json.find('}', case_at);
    const std::string key_tag = "\"" + key + "\": ";
    const std::size_t key_at = json.find(key_tag, case_at);
    if (key_at == std::string::npos || key_at > case_end)
        return false;
    out = std::strtod(json.c_str() + key_at + key_tag.size(),
                      nullptr);
    return true;
}

/**
 * Compare measured steps/s against the committed baseline file;
 * returns the number of regressions beyond the tolerance.
 */
// maybe_unused: Debug builds gate on assert exercise only, so the
// baseline comparison below compiles out of the --check path there.
[[maybe_unused]] int
checkAgainstBaseline(const std::string &path,
                     const std::vector<BenchCase> &results)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "check: cannot read baseline " << path << "\n";
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();

    int regressions = 0;
    int compared = 0;
    std::cout << "\nGate versus " << path << " (tolerance "
              << static_cast<int>(kCheckTolerance * 100) << "%):\n";
    for (const BenchCase &result : results) {
        double measured = 0.0;
        for (const auto &[key, value] : result.metrics) {
            if (key == "steps_per_s")
                measured = value;
        }
        double committed = 0.0;
        if (!lookupBenchValue(json, result.name, "steps_per_s",
                              committed)) {
            std::cout << "  " << result.name
                      << ": no committed baseline, skipped\n";
            continue;
        }
        const bool ok =
            measured >= committed * (1.0 - kCheckTolerance);
        std::cout << "  " << result.name << ": "
                  << ConsoleTable::num(measured, 1) << " vs "
                  << ConsoleTable::num(committed, 1) << " steps/s "
                  << (ok ? "OK" : "REGRESSION") << "\n";
        ++compared;
        if (!ok)
            ++regressions;
    }
    if (compared == 0) {
        // A baseline that matches nothing must not pass vacuously
        // (renamed cases, regenerated file) — that would silently
        // disable the gate.
        std::cerr << "check: no case in " << path
                  << " matched the measured layouts\n";
        return 1;
    }
    return regressions;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        }
    }

    printBanner(std::cout, "Step-loop throughput (steps/second)");

    const LayoutCase cases[] = {
        // 40 / 320 / 960 servers; "large" is the paper's Fig. 19
        // week-long large-scale setup.
        {"small", 1, 2, 5, 4, 2000},
        {"medium", 4, 2, 10, 4, 500},
        {"large", 12, 2, 10, 4, 150},
    };

    ConsoleTable table({"layout", "servers", "construct (ms)",
                        "steps", "wall (s)", "cpu (s)",
                        "steps/s (cpu)"});
    ConsoleTable phaseTable({"layout", "place", "risk", "assign",
                             "draws", "power", "thermal", "telem",
                             "config", "migrate", "metrics"});
    std::vector<BenchCase> results;

    for (const LayoutCase &lc : cases) {
        const SimConfig cfg = benchScenario(lc);

        // Construction cost (dominated by the offline profile
        // refits) is part of the trajectory: thousand-server what-if
        // sweeps rebuild the simulator per scenario.
        WallTimer construct_timer;
        ClusterSim sim(cfg);
        const double construct_s = construct_timer.elapsedS();

        // Warm up past the initial placement wave so the timed window
        // measures the steady-state step loop.
        const int timed = smoke ? lc.steps / 10 : lc.steps;
        const int warmup = timed / 5 + 5;
        sim.runSteps(warmup);

        // Headline rate uses process CPU time: the step loop is
        // single-threaded, so CPU time measures the same work as
        // wall time but does not charge hypervisor steal or
        // preemption on shared hosts to the benchmark — the --check
        // gate stays meaningful under background load. Best of
        // three windows: contention still shows up in CPU time as
        // cache-refill work after context switches, and the fastest
        // window is the one least perturbed by it. Wall time (same
        // best window) is reported alongside.
        double cpu = 0.0;
        double wall = 0.0;
        for (int window = 0; window < 3; ++window) {
            WallTimer timer;
            CpuTimer cpu_timer;
            sim.runSteps(timed);
            const double window_cpu = cpu_timer.elapsedS();
            if (window == 0 || window_cpu < cpu) {
                cpu = window_cpu;
                wall = timer.elapsedS();
            }
        }
        const double rate = timed / cpu;
        const double servers =
            static_cast<double>(sim.datacenter().serverCount());

        // Per-phase breakdown over a second, separately timed window:
        // phase timing adds clock reads to every step, so it stays
        // off during the headline window above and the breakdown is
        // measured on its own steps.
        sim.enablePhaseTiming();
        const StepPhaseTimes warm = sim.phaseTimes();
        sim.runSteps(timed);
        const StepPhaseTimes &total = sim.phaseTimes();
        if (sim.finished()) {
            // runSteps() silently no-ops past the horizon; a window
            // that hit it measured fewer steps than it divides by.
            std::cerr << "bench: " << lc.name
                      << " hit the scenario horizon mid-window; "
                         "raise benchScenario horizon\n";
            return 1;
        }
        const double inv_us = 1e6 / timed;
        const StepPhaseTimes phase{
            (total.placeS - warm.placeS) * inv_us,
            (total.riskS - warm.riskS) * inv_us,
            (total.assignS - warm.assignS) * inv_us,
            (total.drawsS - warm.drawsS) * inv_us,
            (total.powerS - warm.powerS) * inv_us,
            (total.thermalS - warm.thermalS) * inv_us,
            (total.telemetryS - warm.telemetryS) * inv_us,
            (total.configureS - warm.configureS) * inv_us,
            (total.migrateS - warm.migrateS) * inv_us,
            (total.metricsS - warm.metricsS) * inv_us};

        table.addRow({lc.name, ConsoleTable::num(servers, 0),
                      ConsoleTable::num(construct_s * 1e3, 1),
                      ConsoleTable::num(timed, 0),
                      ConsoleTable::num(wall, 3),
                      ConsoleTable::num(cpu, 3),
                      ConsoleTable::num(rate, 1)});
        phaseTable.addRow({lc.name,
                           ConsoleTable::num(phase.placeS, 1),
                           ConsoleTable::num(phase.riskS, 1),
                           ConsoleTable::num(phase.assignS, 1),
                           ConsoleTable::num(phase.drawsS, 1),
                           ConsoleTable::num(phase.powerS, 1),
                           ConsoleTable::num(phase.thermalS, 1),
                           ConsoleTable::num(phase.telemetryS, 1),
                           ConsoleTable::num(phase.configureS, 1),
                           ConsoleTable::num(phase.migrateS, 1),
                           ConsoleTable::num(phase.metricsS, 1)});

        BenchCase result;
        result.name = lc.name;
        result.set("servers", servers);
        result.set("construct_s", construct_s);
        result.set("steps", timed);
        result.set("wall_s", wall);
        result.set("cpu_s", cpu);
        result.set("steps_per_s", rate);
        result.set("wall_steps_per_s", timed / wall);
        result.set("phase_place_us", phase.placeS);
        result.set("phase_risk_us", phase.riskS);
        result.set("phase_assign_us", phase.assignS);
        result.set("phase_draws_us", phase.drawsS);
        result.set("phase_power_us", phase.powerS);
        result.set("phase_thermal_us", phase.thermalS);
        result.set("phase_telemetry_us", phase.telemetryS);
        result.set("phase_configure_us", phase.configureS);
        result.set("phase_migrate_us", phase.migrateS);
        result.set("phase_metrics_us", phase.metricsS);
        results.push_back(result);
    }

    table.print(std::cout);
    std::cout << "\nPer-phase breakdown (us/step, timed window):\n";
    phaseTable.print(std::cout);
    const std::string path = "BENCH_step_loop.json";
    if (writeBenchJson(path, "step_loop", smoke ? "smoke" : "full",
                       results)) {
        std::cout << "\nResults written to " << path << "\n";
    }

    if (!check_path.empty()) {
#ifdef NDEBUG
        const int regressions =
            checkAgainstBaseline(check_path, results);
        if (regressions > 0) {
            std::cerr << "check: " << regressions
                      << " layout(s) regressed more than "
                      << static_cast<int>(kCheckTolerance * 100)
                      << "%\n";
            return 1;
        }
        std::cout << "Gate passed.\n";
#else
        // Debug builds run --check to exercise the per-step
        // incremental-view and predictor cross-check asserts under
        // the bench workload; the steps/s comparison against the
        // Release baseline would be meaningless here, so only the
        // assert exercise gates.
        std::cout << "Debug build: cross-check asserts exercised; "
                     "perf gate versus "
                  << check_path << " skipped.\n";
#endif
    }
    return 0;
}
