/**
 * @file
 * Figure 12: VM lifetime CDF and VMs-per-endpoint CDF.
 *
 * Paper shape: >60% of GPU VMs live two weeks or longer; ~50% of
 * SaaS VMs belong to large endpoints (100+ VMs).
 */

#include <algorithm>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "workload/vmtrace.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 12: VM demographics");

    VmTraceConfig cfg;
    cfg.targetVmCount = 2000;
    cfg.horizon = kWeek;
    cfg.endpointCount = 40;
    // Production-grade endpoint skew (Fig. 12b: half the SaaS VMs
    // sit in the few 100+-VM endpoints).
    cfg.endpointZipfS = 1.25;
    VmTraceGenerator gen(cfg, 17);

    // Lifetime CDF over fresh arrivals (initial VMs carry residual
    // lifetimes).
    QuantileSample lifetimes_days;
    for (const VmRecord &vm : gen.records()) {
        if (vm.arrival == 0)
            continue;
        lifetimes_days.add(static_cast<double>(vm.lifetime()) /
                           static_cast<double>(kDay));
    }

    ConsoleTable life({"lifetime", "paper CDF", "measured CDF"});
    auto frac_below = [&](double days) {
        int below = 0;
        for (double v : lifetimes_days.raw()) {
            if (v < days)
                ++below;
        }
        return static_cast<double>(below) /
            static_cast<double>(lifetimes_days.count());
    };
    life.addRow({"< 1 day", "small",
                 ConsoleTable::pct(frac_below(1.0))});
    life.addRow({"< 7 days", "~30%",
                 ConsoleTable::pct(frac_below(7.0))});
    life.addRow({"< 14 days", "< 40%",
                 ConsoleTable::pct(frac_below(14.0))});
    life.addRow({">= 14 days", "> 60%",
                 ConsoleTable::pct(1.0 - frac_below(14.0))});
    life.print(std::cout);

    // Endpoint size skew.
    std::vector<int> sizes = gen.endpointVmCounts();
    std::sort(sizes.begin(), sizes.end(), std::greater<int>());
    int total = 0;
    for (int s : sizes)
        total += s;
    int large_vms = 0;
    for (int s : sizes) {
        if (s >= 100)
            large_vms += s;
    }

    std::cout << "\nVMs per endpoint (" << cfg.endpointCount
              << " endpoints, " << total << " SaaS VM records):\n";
    ConsoleTable ep({"metric", "paper shape", "measured"});
    ep.addRow({"largest endpoint", "> 100 VMs",
               std::to_string(sizes.front()) + " VMs"});
    ep.addRow({"VMs in 100+ endpoints", "~50%",
               ConsoleTable::pct(static_cast<double>(large_vms) /
                                 total)});
    ep.addRow({"smallest endpoint", "single digits",
               std::to_string(sizes.back()) + " VMs"});
    ep.print(std::cout);
    return 0;
}
