/**
 * @file
 * Figure 16: normalized temperature/power versus goodput across the
 * full configuration space, with Pareto frontiers.
 *
 * Paper shape: each model size forms a band; per-model Pareto
 * frontiers trade goodput against temperature/power; model size
 * dominates the quality dimension.
 */

#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "llm/perf.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 16: config space Pareto frontier");

    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));

    // Evaluate the config space in parallel; profile() is memoized
    // behind a lock, so concurrent derivation is safe and the
    // result is index-ordered (identical to a serial allProfiles()).
    const auto configs = ConfigSpace::enumerate(perf.spec());
    std::vector<ConfigProfile> profiles(configs.size());
    {
        ThreadPool pool;
        pool.parallelFor(configs.size(), [&](std::size_t i) {
            profiles[i] = perf.profile(configs[i]);
        });
    }

    // Normalizers: the reference config's saturated numbers.
    const ConfigProfile ref = perf.profile(referenceConfig());
    const double max_goodput = [&] {
        double best = 0.0;
        for (const ConfigProfile &p : profiles)
            best = std::max(best, p.goodputTps);
        return best;
    }();
    const double ref_power =
        perf.estimateServerPower(ref, 1.0).value();
    const double ref_gpu_w = ref.prefill.gpuPower.value();

    std::cout << "Config space: " << profiles.size()
              << " feasible configurations\n\n";

    // Per-model-size envelope (Fig. 16 highlights model size).
    ConsoleTable bands({"model", "goodput range (norm)",
                        "power range (norm)",
                        "hottest-gpu power range (norm)"});
    for (ModelSize size :
         {ModelSize::B70, ModelSize::B13, ModelSize::B7}) {
        double glo = 1e18;
        double ghi = 0.0;
        double plo = 1e18;
        double phi = 0.0;
        double tlo = 1e18;
        double thi = 0.0;
        for (const ConfigProfile &p : profiles) {
            if (p.config.model != size || p.goodputTps <= 0.0)
                continue;
            glo = std::min(glo, p.goodputTps / max_goodput);
            ghi = std::max(ghi, p.goodputTps / max_goodput);
            const double power =
                perf.estimateServerPower(p, 1.0).value() /
                ref_power;
            plo = std::min(plo, power);
            phi = std::max(phi, power);
            const double gpu =
                p.prefill.gpuPower.value() / ref_gpu_w;
            tlo = std::min(tlo, gpu);
            thi = std::max(thi, gpu);
        }
        bands.addRow({modelSizeName(size),
                      ConsoleTable::num(glo, 2) + " - " +
                          ConsoleTable::num(ghi, 2),
                      ConsoleTable::num(plo, 2) + " - " +
                          ConsoleTable::num(phi, 2),
                      ConsoleTable::num(tlo, 2) + " - " +
                          ConsoleTable::num(thi, 2)});
    }
    bands.print(std::cout);

    // Pareto frontier on the power metric.
    for (bool use_power : {true, false}) {
        const auto frontier =
            PerfModel::paretoFrontier(profiles, use_power);
        std::cout << "\nPareto frontier ("
                  << (use_power ? "server power"
                                : "hottest-GPU temperature proxy")
                  << "): " << frontier.size() << " points\n";
        ConsoleTable table({"config", "goodput (norm)",
                            "metric (norm)", "quality"});
        // Print up to 12 evenly spaced points.
        const std::size_t stride =
            std::max<std::size_t>(1, frontier.size() / 12);
        for (std::size_t i = 0; i < frontier.size(); i += stride) {
            const ConfigProfile &p = frontier[i];
            const double metric = use_power
                ? perf.estimateServerPower(p, 1.0).value() /
                    ref_power
                : p.prefill.gpuPower.value() / ref_gpu_w;
            table.addRow({p.config.label(),
                          ConsoleTable::num(
                              p.goodputTps / max_goodput, 2),
                          ConsoleTable::num(metric, 2),
                          ConsoleTable::num(p.quality, 2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper: per-model Pareto frontiers minimize "
                 "temperature/power at minimal goodput cost;\n"
                 "model size drives the quality axis.\n";
    return 0;
}
