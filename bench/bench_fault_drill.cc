/**
 * @file
 * Compound-emergency fault drill: the small cluster through a
 * heat-wave day with a scripted chiller derate stacked on the
 * afternoon demand peak (sim/scenario.hh faultDrillScenario),
 * Baseline vs TAPAS, with sensor quarantine armed on the TAPAS run.
 *
 * Emits the per-run robustness report — thermal excursion steps,
 * unresolved power-budget violations, throughput lost during the
 * fault window, and time-to-recover — as a console table and
 * `BENCH_fault_drill.json`.
 *
 * `--smoke` shortens the horizon to the fault window plus recovery;
 * `--check` exits non-zero unless the drill bites (baseline has
 * inlet excursions) and TAPAS strictly dominates the baseline on
 * excursion time — the robustness gate of scripts/check.sh-style
 * pre-PR runs.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "common/timer.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct DrillOutcome
{
    SimMetrics metrics;
    double wallS = 0.0;
};

DrillOutcome
runDrill(const SimConfig &cfg)
{
    WallTimer timer;
    ClusterSim sim(cfg);
    sim.run();
    DrillOutcome out;
    out.metrics = sim.metrics();
    out.wallS = timer.elapsedS();
    return out;
}

BenchCase
reportCase(const std::string &name, const DrillOutcome &outcome)
{
    const SimMetrics &m = outcome.metrics;
    BenchCase c;
    c.name = name;
    c.set("wall_s", outcome.wallS);
    c.set("steps", static_cast<double>(m.totalSteps));
    c.set("inlet_excursion_steps",
          static_cast<double>(m.inletExcursionSteps));
    c.set("inlet_excursion_frac", m.inletExcursionFraction());
    c.set("gpu_excursion_steps",
          static_cast<double>(m.gpuExcursionSteps));
    c.set("power_violation_steps",
          static_cast<double>(m.powerViolationSteps));
    c.set("fault_steps", static_cast<double>(m.faultSteps));
    c.set("fault_active_s", static_cast<double>(m.faultActiveS));
    c.set("fault_loss_frac", m.faultThroughputLossFrac());
    c.set("mean_recovery_s", m.meanRecoveryS());
    c.set("max_recovery_s", static_cast<double>(m.maxRecoveryS));
    c.set("recoveries", static_cast<double>(m.recoveries));
    c.set("quarantined_server_steps",
          static_cast<double>(m.quarantinedServerSteps));
    c.set("total_tokens", m.totalTokens);
    c.set("mean_quality", m.meanQuality());
    c.set("slo_attainment", m.sloAttainment());
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
    }

    printBanner(std::cout,
                "Fault drill: chiller derate + heat wave + "
                "demand peak");

    SimConfig cfg = faultDrillScenario(41);
    if (smoke) {
        // Fault window (11h-18h) plus recovery headroom.
        cfg.horizon = 20 * kHour;
    }
    // The TAPAS run drills the full degradation stack: sensor
    // quarantine armed (a no-op while every sensor stays healthy)
    // and periodic gated profile refits from live telemetry.
    SimConfig tapas_cfg = cfg.asTapas();
    tapas_cfg.policy.sensorQuarantineEnabled = true;
    tapas_cfg.profileRefitPeriod = 6 * kHour;

    const DrillOutcome base = runDrill(cfg.asBaseline());
    const DrillOutcome tapas = runDrill(tapas_cfg);

    ConsoleTable table({"metric", "Baseline", "TAPAS"});
    auto row = [&](const char *name, double b, double t,
                   int digits) {
        table.addRow({name, ConsoleTable::num(b, digits),
                      ConsoleTable::num(t, digits)});
    };
    const SimMetrics &bm = base.metrics;
    const SimMetrics &tm = tapas.metrics;
    row("inlet excursion steps",
        static_cast<double>(bm.inletExcursionSteps),
        static_cast<double>(tm.inletExcursionSteps), 0);
    row("inlet excursion frac", bm.inletExcursionFraction(),
        tm.inletExcursionFraction(), 4);
    row("gpu excursion steps",
        static_cast<double>(bm.gpuExcursionSteps),
        static_cast<double>(tm.gpuExcursionSteps), 0);
    row("power violation steps",
        static_cast<double>(bm.powerViolationSteps),
        static_cast<double>(tm.powerViolationSteps), 0);
    row("fault-window loss frac", bm.faultThroughputLossFrac(),
        tm.faultThroughputLossFrac(), 4);
    row("mean recovery (s)", bm.meanRecoveryS(), tm.meanRecoveryS(),
        0);
    row("max recovery (s)", static_cast<double>(bm.maxRecoveryS),
        static_cast<double>(tm.maxRecoveryS), 0);
    row("quarantined server steps",
        static_cast<double>(bm.quarantinedServerSteps),
        static_cast<double>(tm.quarantinedServerSteps), 0);
    row("mean quality", bm.meanQuality(), tm.meanQuality(), 3);
    row("total tokens (M)", bm.totalTokens / 1e6,
        tm.totalTokens / 1e6, 1);
    table.print(std::cout);

    writeBenchJson("BENCH_fault_drill.json", "fault_drill",
                   smoke ? "smoke" : "full",
                   {reportCase("baseline", base),
                    reportCase("tapas", tapas)});

    if (check) {
        // The robustness gate: the drill must actually stress the
        // plant, and TAPAS must spend strictly less time in thermal
        // excursion than the baseline.
        if (bm.inletExcursionSteps == 0) {
            std::cerr << "CHECK FAIL: drill produced no baseline "
                         "inlet excursions (scenario too mild)\n";
            return 1;
        }
        if (tm.inletExcursionSteps >= bm.inletExcursionSteps) {
            std::cerr << "CHECK FAIL: TAPAS inlet excursion steps ("
                      << tm.inletExcursionSteps
                      << ") not strictly below baseline ("
                      << bm.inletExcursionSteps << ")\n";
            return 1;
        }
        std::cout << "CHECK OK: TAPAS " << tm.inletExcursionSteps
                  << " excursion steps vs baseline "
                  << bm.inletExcursionSteps << "\n";
    }
    return 0;
}
