/**
 * @file
 * Figure 20: ablation across the eight policy combinations and the
 * SaaS/IaaS mix sensitivity.
 *
 * Paper shape: each individual policy (Place, Route, Config) trims
 * both maximum temperature and peak power (up to ~12%); pairs do
 * better; full TAPAS does best (-17% temp, -23% power at 50/50).
 * With an all-IaaS fleet only Place helps; an all-SaaS fleet gives
 * TAPAS its biggest wins (-23% temp, -28% power).
 */

#include <iostream>

#include "common/table.hh"
#include "sim/cluster.hh"
#include "sim/scenario.hh"

using namespace tapas;

namespace {

struct Variant
{
    const char *name;
    bool place;
    bool route;
    bool config;
};

const Variant kVariants[] = {
    {"Baseline", false, false, false},
    {"Place", true, false, false},
    {"Route", false, true, false},
    {"Config", false, false, true},
    {"Place+Route", true, true, false},
    {"Place+Config", true, false, true},
    {"Route+Config", false, true, true},
    {"TAPAS", true, true, true},
};

struct Cell
{
    double maxTemp;
    double peakPower;
};

Cell
run(const SimConfig &base, const Variant &variant)
{
    ClusterSim sim(
        base.withPolicies(variant.place, variant.route,
                          variant.config));
    sim.run();
    return {sim.metrics().maxGpuTempC.mean(),
            sim.metrics().peakRowPowerFrac.mean()};
}

} // namespace

int
main(int argc, char **argv)
{
    printBanner(std::cout,
                "Fig. 20: policy ablation x SaaS/IaaS mix");
    // --quick runs the 50/50 column only.
    const bool quick = argc > 1 &&
        std::string(argv[1]) == "--quick";

    SimConfig cfg = largeScaleScenario(7);
    // A shorter horizon keeps the 8x5 sweep tractable; two days
    // cover two full diurnal cycles.
    cfg.horizon = 2 * kDay;

    const double mixes[] = {1.0, 0.75, 0.5, 0.25, 0.0};

    std::cout << "Mean max temperature / mean peak row power, "
                 "normalized to Baseline per column:\n\n";
    ConsoleTable table({"policy", "SaaS", "75/25", "50/50", "25/75",
                        "IaaS"});

    // Collect the full matrix.
    Cell results[8][5];
    Cell base_cells[5];
    for (int m = 0; m < 5; ++m) {
        if (quick && m != 2)
            continue;
        SimConfig mix_cfg = cfg;
        mix_cfg.vmTrace.saasFraction = mixes[m];
        for (int v = 0; v < 8; ++v) {
            results[v][m] = run(mix_cfg, kVariants[v]);
            if (v == 0)
                base_cells[m] = results[0][m];
        }
    }

    auto cell_text = [&](int v, int m) {
        if (quick && m != 2)
            return std::string("-");
        const double temp =
            results[v][m].maxTemp / base_cells[m].maxTemp;
        const double power =
            results[v][m].peakPower / base_cells[m].peakPower;
        return ConsoleTable::num(temp, 3) + "/" +
            ConsoleTable::num(power, 3);
    };

    for (int v = 0; v < 8; ++v) {
        table.addRow({kVariants[v].name, cell_text(v, 0),
                      cell_text(v, 1), cell_text(v, 2),
                      cell_text(v, 3), cell_text(v, 4)});
    }
    table.print(std::cout);

    std::cout
        << "\nEach cell: temp/power relative to Baseline (lower is "
           "better).\n"
        << "Paper shapes to check: every single policy <= 1.0; "
           "TAPAS lowest at every mix;\n"
        << "all-IaaS column improves only via Place; all-SaaS "
           "column improves the most\n"
        << "(paper: -23% temp, -28% power all-SaaS; -17%/-23% at "
           "50/50).\n";
    return 0;
}
