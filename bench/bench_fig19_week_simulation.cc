/**
 * @file
 * Figure 19: week-long large-scale simulation (~1000 servers).
 *
 * Paper shape: across the week, TAPAS's maximum temperature and peak
 * row power run below Baseline's (paper: -15% max temperature, -24%
 * peak power), with no quality impact.
 */

#include <iostream>

#include "common/table.hh"
#include "common/threadpool.hh"
#include "sim/scenario.hh"
#include "sim/sweep.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout,
                "Fig. 19: 1-week large-scale simulation");

    const SimConfig cfg = largeScaleScenario(7);

    // Both week-long replications run concurrently; each job is a
    // self-contained simulation, so results match the serial runs.
    ThreadPool pool;
    ScenarioSweep sweep(pool);
    const auto outcomes =
        sweep.run({{"baseline", cfg.asBaseline()},
                   {"tapas", cfg.asTapas()}});

    const SimMetrics &bm = outcomes[0].metrics;
    const SimMetrics &tm = outcomes[1].metrics;

    // Daily-noon samples of both series.
    std::cout << "Max temperature (C) and peak row power "
                 "(fraction of provision), daily at noon:\n";
    ConsoleTable timeline({"day", "temp base", "temp tapas",
                           "power base", "power tapas"});
    for (int day = 0; day < 7; ++day) {
        const SimTime t = day * kDay + 12 * kHour;
        std::size_t idx = 0;
        for (std::size_t i = 0; i < bm.maxGpuTempC.size(); ++i) {
            if (bm.maxGpuTempC.timeAt(i) == t)
                idx = i;
        }
        timeline.addRow(
            {std::to_string(day + 1),
             ConsoleTable::num(bm.maxGpuTempC.valueAt(idx), 1),
             ConsoleTable::num(tm.maxGpuTempC.valueAt(idx), 1),
             ConsoleTable::num(bm.peakRowPowerFrac.valueAt(idx), 3),
             ConsoleTable::num(tm.peakRowPowerFrac.valueAt(idx),
                               3)});
    }
    timeline.print(std::cout);

    const double temp_red_peak =
        1.0 - tm.maxGpuTempC.maxValue() / bm.maxGpuTempC.maxValue();
    const double temp_red_mean =
        1.0 - tm.maxGpuTempC.mean() / bm.maxGpuTempC.mean();
    const double power_red_peak = 1.0 -
        tm.peakRowPowerFrac.maxValue() /
            bm.peakRowPowerFrac.maxValue();
    const double power_red_mean = 1.0 -
        tm.peakRowPowerFrac.mean() / bm.peakRowPowerFrac.mean();

    std::cout << "\nSummary:\n";
    ConsoleTable summary({"metric", "baseline", "tapas", "reduction",
                          "paper"});
    summary.addRow({"max temperature (week max, C)",
                    ConsoleTable::num(bm.maxGpuTempC.maxValue(), 1),
                    ConsoleTable::num(tm.maxGpuTempC.maxValue(), 1),
                    ConsoleTable::pct(temp_red_peak), "-15%"});
    summary.addRow({"max temperature (series mean, C)",
                    ConsoleTable::num(bm.maxGpuTempC.mean(), 1),
                    ConsoleTable::num(tm.maxGpuTempC.mean(), 1),
                    ConsoleTable::pct(temp_red_mean), "-"});
    summary.addRow({"peak row power (week max)",
                    ConsoleTable::num(
                        bm.peakRowPowerFrac.maxValue(), 3),
                    ConsoleTable::num(
                        tm.peakRowPowerFrac.maxValue(), 3),
                    ConsoleTable::pct(power_red_peak), "-24%"});
    summary.addRow({"peak row power (series mean)",
                    ConsoleTable::num(bm.peakRowPowerFrac.mean(), 3),
                    ConsoleTable::num(tm.peakRowPowerFrac.mean(), 3),
                    ConsoleTable::pct(power_red_mean), "-"});
    summary.addRow({"thermal throttle time",
                    ConsoleTable::pct(bm.thermalCappedFraction()),
                    ConsoleTable::pct(tm.thermalCappedFraction()),
                    "-", "reduced to ~0"});
    summary.addRow({"mean quality",
                    ConsoleTable::num(bm.meanQuality(), 3),
                    ConsoleTable::num(tm.meanQuality(), 3), "-",
                    "no quality impact"});
    summary.addRow({"SLO attainment",
                    ConsoleTable::pct(bm.sloAttainment()),
                    ConsoleTable::pct(tm.sloAttainment()), "-",
                    "no violations"});
    summary.print(std::cout);
    return 0;
}
