/**
 * @file
 * Figure 15: per-phase temperature and power versus tensor
 * parallelism, batch size, and model size.
 *
 * Paper shapes:
 *  (a) TP8 -> TP2: server power falls (fewer GPUs) but the hottest
 *      GPU gets hotter (work concentrates);
 *  (b) batch 64 -> 1: power and temperature fall, but decode memory
 *      temperature rises relative to the die (fetch overheads);
 *  (c) 70B -> 7B: power and temperature fall; quality falls.
 */

#include <iostream>

#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/power.hh"
#include "dcsim/thermal.hh"
#include "llm/perf.hh"

using namespace tapas;

namespace {

struct PhasePoint
{
    double gpuTempC;
    double memTempC;
    double serverKw;
};

PhasePoint
evaluate(const ThermalModel &thermal, const PerfModel &perf,
         const ConfigProfile &profile, bool prefill)
{
    const ServerId sid(0);
    const Celsius inlet(24.0);
    const PhaseProfile &phase =
        prefill ? profile.prefill : profile.decode;

    PhasePoint out;
    double hottest = -1e9;
    double hottest_mem = -1e9;
    for (int g = 0; g < profile.activeGpus; ++g) {
        hottest = std::max(
            hottest, thermal.gpuTemperature(sid, g, inlet,
                                            phase.gpuPower)
                         .value());
        hottest_mem = std::max(
            hottest_mem,
            thermal.memTemperature(sid, g, inlet, phase.gpuPower,
                                   phase.memBoundFrac)
                .value());
    }
    out.gpuTempC = hottest;
    out.memTempC = hottest_mem;
    // Server power with the phase's per-GPU draw on active GPUs.
    const ServerSpec &spec = perf.spec();
    std::vector<Watts> draws(
        static_cast<std::size_t>(spec.gpusPerServer),
        spec.gpuIdlePower);
    for (int g = 0; g < profile.activeGpus; ++g)
        draws[static_cast<std::size_t>(g)] = phase.gpuPower;
    const PowerModel power{PowerConfig{}};
    out.serverKw =
        power.serverPower(spec, draws,
                          PowerModel::heatFraction(spec, draws))
            .value() / 1000.0;
    return out;
}

void
printSweep(const ThermalModel &thermal, const PerfModel &perf,
           const std::vector<std::pair<std::string, InstanceConfig>>
               &configs)
{
    ConsoleTable table({"config", "phase", "gpu C", "mem C",
                        "server kW"});
    for (const auto &[label, config] : configs) {
        const ConfigProfile profile = perf.profile(config);
        for (bool prefill : {true, false}) {
            const PhasePoint point =
                evaluate(thermal, perf, profile, prefill);
            table.addRow({label, prefill ? "prefill" : "decode",
                          ConsoleTable::num(point.gpuTempC, 1),
                          ConsoleTable::num(point.memTempC, 1),
                          ConsoleTable::num(point.serverKw, 2)});
        }
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Fig. 15: phase temp/power vs TP, batch, model");

    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 1;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 2;
    layout_cfg.serversPerRack = 2;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    const PerfModel perf = PerfModel::withReferenceSlo(
        ServerSpec::a100(), PerfParams::forSku(GpuSku::A100));

    std::cout << "(a) Tensor parallelism (FP8 so TP2 fits):\n";
    std::vector<std::pair<std::string, InstanceConfig>> tp_sweep;
    for (int tp : {8, 4, 2}) {
        InstanceConfig config = referenceConfig();
        config.quant = Quantization::FP8;
        config.tensorParallel = tp;
        tp_sweep.emplace_back("TP" + std::to_string(tp), config);
    }
    printSweep(thermal, perf, tp_sweep);
    std::cout << "Paper: TP2 lowers server power but raises the "
                 "hottest GPU's temperature.\n\n";

    std::cout << "(b) Batch size:\n";
    std::vector<std::pair<std::string, InstanceConfig>> batch_sweep;
    for (int batch : {64, 16, 1}) {
        InstanceConfig config = referenceConfig();
        config.maxBatchSize = batch;
        batch_sweep.emplace_back("B" + std::to_string(batch),
                                 config);
    }
    printSweep(thermal, perf, batch_sweep);
    std::cout << "Paper: smaller batches cool the die and cut power, "
                 "but decode memory runs relatively hotter.\n\n";

    std::cout << "(c) Model size:\n";
    std::vector<std::pair<std::string, InstanceConfig>> model_sweep;
    for (ModelSize size :
         {ModelSize::B70, ModelSize::B13, ModelSize::B7}) {
        InstanceConfig config = referenceConfig();
        config.model = size;
        model_sweep.emplace_back(modelSizeName(size), config);
    }
    printSweep(thermal, perf, model_sweep);
    std::cout << "Paper: smaller models draw less power per token "
                 "served and lose quality (Table 1).\n"
              << "Note: per-GPU saturated draw is similar; the win "
                 "appears at equal load, where smaller models\n"
              << "finish the same work at far lower utilization "
                 "(see bench_table1_directions).\n";
    return 0;
}
