/**
 * @file
 * Figure 4: inlet temperature distribution across physical entities.
 *
 * Paper shape: rows differ by up to ~1C, racks within a row by up to
 * ~2C, height within a rack has a minor effect (~0.3C).
 */

#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/thermal.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout,
                "Fig. 4: inlet spread across rows/racks/height");

    LayoutConfig cfg;
    cfg.aisleCount = 4;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);

    const Celsius outside(24.0);
    auto inlet = [&](ServerId sid) {
        return thermal.inletTemperature(sid, outside, 0.6, 0.0)
            .value();
    };

    // Median per row.
    QuantileSample row_medians;
    for (const Row &row : dc.rows()) {
        QuantileSample sample;
        for (ServerId sid : row.servers)
            sample.add(inlet(sid));
        row_medians.add(sample.p50());
    }

    // Spread across rack positions, within each row.
    StatAccumulator rack_spread;
    for (const Row &row : dc.rows()) {
        QuantileSample sample;
        for (RackId rid : row.racks) {
            QuantileSample rack;
            for (ServerId sid : dc.rack(rid).servers)
                rack.add(inlet(sid));
            sample.add(rack.p50());
        }
        rack_spread.add(sample.max() - sample.quantile(0.0));
    }

    // Spread across heights, within each rack.
    StatAccumulator height_spread;
    for (const Row &row : dc.rows()) {
        for (RackId rid : row.racks) {
            QuantileSample rack;
            for (ServerId sid : dc.rack(rid).servers)
                rack.add(inlet(sid));
            height_spread.add(rack.max() - rack.quantile(0.0));
        }
    }

    ConsoleTable table({"entity", "paper spread", "measured spread"});
    table.addRow(
        {"rows", "up to ~1 C",
         ConsoleTable::num(row_medians.max() -
                           row_medians.quantile(0.0), 2) + " C"});
    table.addRow(
        {"racks within row", "up to ~2 C",
         ConsoleTable::num(rack_spread.max(), 2) + " C (max row)"});
    table.addRow(
        {"height within rack", "minor (~0.3 C)",
         ConsoleTable::num(height_spread.mean(), 2) + " C (mean)"});
    table.print(std::cout);

    std::cout << "\nRow medians (C): ";
    for (const Row &row : dc.rows()) {
        QuantileSample sample;
        for (ServerId sid : row.servers)
            sample.add(inlet(sid));
        std::cout << ConsoleTable::num(sample.p50(), 1) << " ";
    }
    std::cout << "\n";
    return 0;
}
