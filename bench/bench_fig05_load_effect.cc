/**
 * @file
 * Figure 5: inlet temperature as a function of datacenter load and
 * outside temperature.
 *
 * Paper shape: at a given outside temperature (e.g. 35C), inlet
 * differs by ~2C between low and high datacenter load; the outside
 * temperature remains the dominant factor.
 */

#include <iostream>

#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/thermal.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 5: inlet vs datacenter load");

    LayoutConfig cfg;
    cfg.aisleCount = 1;
    cfg.rowsPerAisle = 2;
    cfg.racksPerRow = 10;
    cfg.serversPerRack = 4;
    DatacenterLayout dc(cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);
    const ServerId sid(8);

    ConsoleTable table({"outside C", "load 10%", "load 50%",
                        "load 90%", "high-low delta"});
    for (double outside : {15.0, 20.0, 25.0, 30.0, 35.0}) {
        const double lo =
            thermal.inletTemperature(sid, Celsius(outside), 0.1, 0.0)
                .value();
        const double mid =
            thermal.inletTemperature(sid, Celsius(outside), 0.5, 0.0)
                .value();
        const double hi =
            thermal.inletTemperature(sid, Celsius(outside), 0.9, 0.0)
                .value();
        table.addRow({ConsoleTable::num(outside, 0),
                      ConsoleTable::num(lo, 2),
                      ConsoleTable::num(mid, 2),
                      ConsoleTable::num(hi, 2),
                      ConsoleTable::num(hi - lo, 2)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: ~2 C inlet delta between low and high "
                 "load at 35 C outside;\nload correlation much "
                 "weaker than outside-temperature correlation.\n";
    return 0;
}
