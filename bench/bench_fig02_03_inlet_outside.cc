/**
 * @file
 * Figures 2-3: inlet temperature versus outside temperature.
 *
 * Paper shape: inlet tracks outside; below ~15C outside the cooling
 * holds an ~18C humidity floor; between 15-25C inlet rises linearly;
 * above 25C the slope compresses. One of three co-aisle servers runs
 * consistently ~2C warmer than its peers.
 */

#include <iostream>

#include "common/table.hh"
#include "dcsim/layout.hh"
#include "dcsim/thermal.hh"
#include "telemetry/regression.hh"
#include "workload/weather.hh"

using namespace tapas;

int
main()
{
    printBanner(std::cout, "Fig. 2+3: inlet vs outside temperature");

    LayoutConfig layout_cfg;
    layout_cfg.aisleCount = 1;
    layout_cfg.rowsPerAisle = 2;
    layout_cfg.racksPerRow = 10;
    layout_cfg.serversPerRack = 4;
    DatacenterLayout dc(layout_cfg);
    ThermalModel thermal(dc, ThermalConfig{}, 42);

    // Three months spanning the warm season and its cool nights,
    // matching the paper's June-October window.
    WeatherConfig weather_cfg;
    weather_cfg.climate = Climate::Temperate;
    weather_cfg.horizon = 90 * kDay;
    WeatherModel weather(weather_cfg, 42);

    // Three servers in the same aisle (the paper's Fig. 2 setup):
    // the coolest, warmest, and a middle server, so the persistent
    // warm-server gap of Fig. 2 is visible.
    ServerId s1(0);
    ServerId s2(0);
    ServerId s3(1);
    for (const Server &server : dc.servers()) {
        if (thermal.spatialOffset(server.id) <
            thermal.spatialOffset(s1)) {
            s1 = server.id;
        }
        if (thermal.spatialOffset(server.id) >
            thermal.spatialOffset(s2)) {
            s2 = server.id;
        }
    }

    Rng noise(7);
    std::cout << "Warm-season sample (afternoons), three months:\n\n";
    ConsoleTable timeline({"day", "outside", "srv1", "srv2", "srv3"});
    for (int day = 0; day < 90; day += 11) {
        const SimTime t = day * kDay + 15 * kHour;
        const Celsius outside = weather.outsideAt(t);
        timeline.addRow(
            {std::to_string(day + 1),
             ConsoleTable::num(outside.value(), 1),
             ConsoleTable::num(
                 thermal.inletTemperature(s1, outside, 0.6, 0.0)
                     .value(), 1),
             ConsoleTable::num(
                 thermal.inletTemperature(s2, outside, 0.6, 0.0)
                     .value(), 1),
             ConsoleTable::num(
                 thermal.inletTemperature(s3, outside, 0.6, 0.0)
                     .value(), 1)});
    }
    timeline.print(std::cout);

    // Regression across the outside range (Fig. 3): measure slopes
    // in each regime from noisy observations.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (SimTime t = 0; t < weather_cfg.horizon; t += 10 * kMinute) {
        const Celsius outside = weather.outsideAt(t);
        xs.push_back({outside.value()});
        ys.push_back(thermal
                         .inletTemperature(s3, outside, 0.6, 0.0,
                                           &noise)
                         .value());
    }
    PiecewiseLinearModel fit({15.0, 25.0}, 0);
    fit.fit(xs, ys);

    const double below = (fit.predict({12.0}) - fit.predict({6.0})) /
        6.0;
    const double mid = (fit.predict({24.0}) - fit.predict({16.0})) /
        8.0;
    const double above = (fit.predict({34.0}) - fit.predict({27.0})) /
        7.0;

    std::cout << "\nFitted inlet response of server 3 "
              << "(degC inlet per degC outside):\n";
    ConsoleTable slopes({"regime", "paper shape", "measured"});
    slopes.addRow({"outside < 15C", "~flat (humidity floor ~18C)",
                   ConsoleTable::num(below, 2)});
    slopes.addRow({"15-25C", "linear rise",
                   ConsoleTable::num(mid, 2)});
    slopes.addRow({"> 25C", "compressed slope",
                   ConsoleTable::num(above, 2)});
    slopes.print(std::cout);

    std::cout << "\nFloor level at 10C outside: "
              << ConsoleTable::num(fit.predict({10.0}), 1)
              << " C (paper: ~18 C)\n";

    // Persistent warm server (Fig. 2's Server 2 runs ~2C hotter).
    const double gap =
        thermal.inletTemperature(s2, Celsius(22.0), 0.6, 0.0)
            .value() -
        thermal.inletTemperature(s1, Celsius(22.0), 0.6, 0.0)
            .value();
    std::cout << "Server 2 vs server 1 persistent offset: "
              << ConsoleTable::num(gap, 2)
              << " C (paper: ~2 C for its warm server)\n";
    return 0;
}
