"""Shared source-text machinery for tapas-lint and tapas-analyze.

Both engines walk C++ source, blank comments before pattern matching,
honor `lint-allow(<ID>): reason` escapes, and resolve `--changed-only`
file sets from git. The logic lives here once so the two tools cannot
drift (scripts/tapas_lint.py is the rule engine, scripts/
tapas_analyze.py the semantic passes).

Dependency-free (python3 stdlib only), like everything under tools/.
"""

import fnmatch
import os
import re
import subprocess
import sys

SOURCE_EXTS = (".hh", ".cc", ".cpp", ".h", ".hpp")

ALLOW = re.compile(r"lint-allow\(([A-Za-z0-9_,\s]+)\)")

BLOCK_OPEN = re.compile(r"/\*")
BLOCK_CLOSE = re.compile(r"\*/")

# Hot-region markers, shared by lint rule R3 (textual allocation ban)
# and analyze pass A3 (binary verification of the same regions).
HOT_BEGIN = re.compile(r"//\s*tapas-hot\s+begin\b")
HOT_END = re.compile(r"//\s*tapas-hot\s+end\b")


def hot_regions(lines):
    """[(begin, end)] 1-based inclusive line ranges of // tapas-hot
    regions. Non-validating: marker hygiene (nesting, unclosed) is
    R3's job; an unclosed begin extends to end-of-file here so A3
    errs toward checking too much rather than too little."""
    regions = []
    open_at = None
    for i, line in enumerate(lines):
        if HOT_BEGIN.search(line):
            if open_at is None:
                open_at = i
        elif HOT_END.search(line):
            if open_at is not None:
                regions.append((open_at + 1, i + 1))
            open_at = None
    if open_at is not None:
        regions.append((open_at + 1, len(lines)))
    return regions


def matches_glob(rel, patterns):
    """fnmatch with `**` meaning any path segment prefix."""
    for pat in patterns:
        if fnmatch.fnmatch(rel, pat):
            return True
        # "src/**" should also match "src/foo.cc" (fnmatch's "*"
        # crosses "/" so this mostly works; keep prefix form too).
        if pat.endswith("/**") and rel.startswith(pat[:-2]):
            return True
    return False


def strip_comments_file(lines):
    """Return lines with // and /* */ comments blanked (naive about
    string literals — acceptable for this codebase). Raw lines keep
    carrying the lint-allow / tapas-hot / ckpt-skip markers."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        while i < len(line):
            if in_block:
                m = BLOCK_CLOSE.search(line, i)
                if not m:
                    i = len(line)
                    break
                i = m.end()
                in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash != -1 and (block == -1 or slash < block):
                    buf.append(line[i:slash])
                    i = len(line)
                elif block != -1:
                    buf.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    buf.append(line[i:])
                    i = len(line)
        out.append("".join(buf))
    return out


def allowed(rule_id, lines, idx):
    """True when the violation at lines[idx] carries an escape: a
    lint-allow naming this rule on the line itself or in the
    contiguous // comment block directly above it."""
    def names_rule(text):
        m = ALLOW.search(text)
        if not m:
            return False
        ids = [t.strip() for t in m.group(1).split(",")]
        return rule_id in ids

    if names_rule(lines[idx]):
        return True
    j = idx - 1
    while j >= 0:
        stripped = lines[j].strip()
        if not stripped.startswith("//"):
            break
        if names_rule(stripped):
            return True
        j -= 1
    return False


def read_lines(root, rel, tool="tapas-lint"):
    """Read a source file as a line list; exits 2 on I/O failure
    (an unreadable file must never silently pass a gate)."""
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            return f.read().splitlines()
    except OSError as e:
        print("%s: cannot read %s: %s" % (tool, rel, e),
              file=sys.stderr)
        sys.exit(2)


def collect_files(root, targets, excludes, tool="tapas-lint"):
    """Expand files/directories under root to a sorted, deduplicated
    list of repo-relative source paths, minus excluded globs."""
    rels = []
    for target in targets:
        full = os.path.join(root, target)
        if os.path.isfile(full):
            rels.append(os.path.normpath(target))
            continue
        if not os.path.isdir(full):
            print("%s: no such file or directory: %s"
                  % (tool, target), file=sys.stderr)
            sys.exit(2)
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name),
                                      root)
                rels.append(rel)
    out = []
    for rel in rels:
        rel = rel.replace(os.sep, "/")
        if matches_glob(rel, excludes):
            continue
        out.append(rel)
    return sorted(set(out))


def changed_files(root, base, tool="tapas-lint"):
    """Repo-relative paths touched since the merge base with @p base
    (committed work) plus everything dirty or untracked in the
    working tree — the `--changed-only` file set. Exits 2 when git
    or the base ref is unavailable (a silently empty set would make
    the gate vacuous)."""
    def git(*args):
        proc = subprocess.run(
            ["git", "-C", root, *args],
            capture_output=True, text=True)
        if proc.returncode != 0:
            return None
        return proc.stdout

    resolved = None
    candidates = [base] if base else ["origin/main", "main"]
    for ref in candidates:
        if git("rev-parse", "--verify", "--quiet",
               ref + "^{commit}") is not None:
            resolved = ref
            break
    if resolved is None:
        print("%s: --changed-only: none of %s resolve to a commit"
              % (tool, ", ".join(candidates)), file=sys.stderr)
        sys.exit(2)

    listings = [
        git("diff", "--name-only", resolved + "..."),
        git("diff", "--name-only", "HEAD"),
        git("ls-files", "--others", "--exclude-standard"),
    ]
    if any(text is None for text in listings):
        print("%s: --changed-only: git diff against %s failed"
              % (tool, resolved), file=sys.stderr)
        sys.exit(2)
    files = set()
    for text in listings:
        for line in text.splitlines():
            line = line.strip()
            if line:
                files.add(line.replace(os.sep, "/"))
    return files


def emit_violations(violations, jsonl, tool):
    """Print sorted violations: the pinned `path:line: ID: message`
    format, or one JSON object per line with --jsonl (machine
    consumers; the CI problem matcher reads the plain format)."""
    import json

    for rel, line, rule_id, msg in sorted(violations):
        if jsonl:
            print(json.dumps({
                "tool": tool,
                "file": rel,
                "line": line,
                "rule": rule_id,
                "message": msg,
            }, sort_keys=True))
        else:
            print("%s:%d: %s: %s" % (rel, line, rule_id, msg))
