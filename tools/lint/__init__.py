# tapas-lint rule package; see rules.py for the rule table and
# scripts/tapas_lint.py for the engine.
