"""Rule table for tapas-lint (scripts/tapas_lint.py).

Each rule is data, not code: the engine walks the repo once and
applies every rule whose scope matches the file. Adding a repo
convention = adding an entry here plus a fixture pair under
tests/tooling/fixtures/ (the ctest suite asserts each rule's ID and
exit code against those fixtures).

Scope globs are matched against the path relative to the lint root
(the repo root in normal runs, a fixture mini-root in tests).

Escape hatch: a violating line is excused when `lint-allow(<id>):`
appears on the line itself or in the contiguous `//` comment block
immediately above it. The escape must name the rule it silences.
"""

# Paths never walked by a default tapas-lint / tapas-analyze run.
# The fixture mini-roots contain intentional violations of every rule
# (the tooling suites lint them explicitly with --root); build trees
# hold generated sources. Single source of truth: the lint engine,
# the analyze engine, and the CMake test glob (via execute_process)
# all consume this list, so a new fixture dir cannot drift between
# them.
FIXTURE_DIRS = [
    "tests/tooling/fixtures",
]

DEFAULT_EXCLUDES = (
    ["%s/**" % d for d in FIXTURE_DIRS]
    + [
        "build*/**",
        ".git/**",
    ]
)

# Scalar per-server/per-call model entry points that survive only for
# tests, benches, and debug cross-checks. Decision hot loops must use
# the batched passes (ProfileBank::predict*Batch,
# PerfModel::operating*PointBatch); see the scalar-predict-deprecated
# and scalar-op-solve-deprecated notes at the definitions.
_SCALAR_DEPRECATED = (
    "predictInletC",
    "predictGpuTempC",
    "predictHottestGpuC",
    "predictServerPowerW",
    "predictServerAirflowCfm",
    "operatingPointAt",
    "operatingGpuPointAt",
)

RULES = [
    {
        "id": "R1",
        "name": "no-deprecated-scalar-calls",
        "summary": "deprecated scalar predict*/operating*PointAt call"
                   " in library code (use the batched passes)",
        "kind": "pattern",
        "pattern": r"\b(?:%s)\s*\(" % "|".join(_SCALAR_DEPRECATED),
        "include": ["src/**"],
        # The defining files: declarations, definitions, and the
        # batched implementations' internal reuse (grid node fills,
        # debug cross-checks) live here by design.
        "exclude": [
            "src/llm/perf.hh",
            "src/llm/perf.cc",
            "src/telemetry/profiles.hh",
            "src/telemetry/profiles.cc",
        ],
        "strip_comments": True,
    },
    {
        "id": "R2",
        "name": "determinism",
        "summary": "nondeterministic source in src/ (everything must"
                   " derive from SimConfig::seed)",
        "kind": "pattern",
        "pattern": (
            r"std::random_device"
            r"|(?<![A-Za-z0-9_])s?rand\s*\("
            r"|(?<![A-Za-z0-9_])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
            r"|system_clock"
        ),
        "include": ["src/**"],
        "exclude": [],
        "strip_comments": True,
    },
    {
        "id": "R3",
        "name": "hot-region-allocations",
        "summary": "allocation call inside a // tapas-hot region"
                   " (member scratch only on the step loop)",
        "kind": "hot-region",
        # `new`, or container growth on a receiver that is not named
        # as scratch. The receiver capture lets the engine exempt
        # *Scratch members (persistent capacity, steady-state
        # allocation-free by construction).
        "pattern": (
            r"(?<![A-Za-z0-9_])new(?![A-Za-z0-9_])"
            r"|(?P<recv>[A-Za-z_][A-Za-z0-9_]*)\s*\.\s*"
            r"(?:push_back|emplace_back|resize|reserve)\s*\("
        ),
        "receiver_allow": r"[Ss]cratch",
        "include": [
            "src/sim/cluster.cc",
            "src/core/risk.cc",
            "src/core/tapas.cc",
        ],
        "exclude": [],
        "strip_comments": True,
    },
    {
        "id": "R4",
        "name": "no-iostream-in-library",
        "summary": "iostream/printf in library code (use"
                   " common/logging)",
        "kind": "pattern",
        "pattern": (
            r"#\s*include\s*<iostream>"
            r"|std::cout|std::cerr"
            r"|(?<![A-Za-z0-9_])printf\s*\("
        ),
        "include": ["src/**"],
        # common/logging IS the sanctioned sink; CSV/table/timer
        # emitters format with snprintf, which the lookbehind above
        # already permits.
        "exclude": ["src/common/logging.hh", "src/common/logging.cc"],
        "strip_comments": True,
    },
    {
        "id": "R5",
        "name": "header-guard-naming",
        "summary": "header guard must be TAPAS_<PATH>_HH derived from"
                   " the path under src/",
        "kind": "header-guard",
        "include": ["src/**/*.hh"],
        "exclude": [],
    },
    {
        "id": "R6",
        "name": "no-disabled-or-skipped-tests",
        "summary": "DISABLED_/GTEST_SKIP in tests (silently stops"
                   " gating; fix or delete the test)",
        "kind": "pattern",
        "pattern": (
            r"TEST(?:_F|_P)?\(.*DISABLED_"
            r"|DISABLED_[A-Za-z0-9_]+\s*,"
            r"|GTEST_SKIP"
        ),
        "include": ["tests/**"],
        "exclude": [],
        "strip_comments": True,
    },
    {
        "id": "R7",
        "name": "lock-discipline",
        "summary": "raw std::mutex family in src/ (use the annotated"
                   " tapas::Mutex wrappers from"
                   " common/thread_annotations.hh)",
        "kind": "pattern",
        "pattern": (
            r"std::(?:recursive_|timed_|shared_)?mutex(?![A-Za-z0-9_])"
            r"|std::lock_guard|std::unique_lock|std::scoped_lock"
            r"|std::condition_variable(?![A-Za-z0-9_])"
        ),
        "include": ["src/**"],
        # The wrappers themselves are the one sanctioned user.
        "exclude": ["src/common/thread_annotations.hh"],
        "strip_comments": True,
    },
    {
        "id": "R8",
        "name": "no-raw-file-writes",
        "summary": "raw fopen/fwrite/ofstream outside the"
                   " serialization layer (use atomicWriteFile /"
                   " readFile* from common/serialize.hh)",
        "kind": "pattern",
        # Write-side primitives only: a torn *read* is handled by the
        # checkpoint CRC/length checks, so std::ifstream stays legal
        # (bench loaders read baselines with it). Every durable write
        # must go through atomic write-rename or a crash can leave a
        # torn file that later reads as silent corruption.
        "pattern": (
            r"\bfopen\s*\("
            r"|\bfwrite\s*\("
            r"|std::ofstream"
            r"|std::fstream(?![A-Za-z0-9_])"
        ),
        "include": ["src/**", "bench/**", "examples/**"],
        # The one sanctioned user: the atomic write-rename itself.
        "exclude": [
            "src/common/serialize.cc",
            "src/common/serialize.hh",
        ],
        "strip_comments": True,
    },
]
