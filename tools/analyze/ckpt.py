"""Pass A1: checkpoint field-coverage.

The checkpoint layer is bit-exact iff every stateful member appears
in its class's checkpointState(Archive&) walk. This pass parses the
non-static data members of every class that declares checkpointState
(headers under the analysis root), locates the walk body (inline in
the header or an out-of-line Class::checkpointState in any source
file), and fails on any member that is neither referenced by the
walk nor exempted with a `// ckpt-skip(category): reason`
annotation.

Exemption grammar (on the member's declaration line or in the
contiguous `//` comment block directly above it):

    // ckpt-skip(derived): rebuilt by recompute() on restore
    // ckpt-skip(scratch): per-step buffer, contents dead across steps
    // ckpt-skip(constant): set once at construction from SimConfig

Categories are closed (derived|scratch|constant); a ckpt-skip with
any other category, or with no reason text, is itself a violation —
an exemption that does not say *why* is reviewer memory again.

Coverage is token-presence: a member is archived when its name
appears as an identifier in the comment-stripped walk body. That is
deliberately permissive (a mention in a helper expression counts)
— A1 is a forgotten-field detector, not a proof of serialization.
"""

import re

from lint.textutil import allowed, strip_comments_file

PASS_ID = "A1"

CKPT_SKIP = re.compile(r"ckpt-skip\(([^)]*)\)(\s*:\s*(.*))?")
SKIP_CATEGORIES = ("derived", "scratch", "constant")

_CLASS_HEAD = re.compile(r"\b(class|struct)\s+([A-Za-z_][A-Za-z0-9_]*)")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

# Statements that are never data members, keyed on their first token.
_NON_MEMBER_KEYWORDS = {
    "using", "typedef", "friend", "static", "template", "virtual",
    "explicit", "operator", "return", "if", "for", "while", "switch",
    "case", "default", "break", "continue", "goto", "namespace",
    "extern", "static_assert",
}

_TYPE_KEYWORDS = {
    "class", "struct", "enum", "union", "const", "volatile",
    "mutable", "constexpr", "inline", "signed", "unsigned", "long",
    "short", "int", "char", "bool", "float", "double", "void",
    "auto",
}


class ClassInfo:
    def __init__(self, rel, name, line):
        self.rel = rel          # header holding the definition
        self.name = name
        self.line = line        # 1-based line of the class head
        self.members = []       # [(name, 1-based decl line)]
        self.declares_walk = False
        self.inline_walk = None  # body text when defined in-class
        self.walk_rel = None     # file the walk body came from


def _text_with_linemap(stripped):
    """Join stripped lines; return (text, offsets) where offsets[i]
    is the char position where line i starts."""
    offsets = []
    pos = 0
    for line in stripped:
        offsets.append(pos)
        pos += len(line) + 1
    return "\n".join(stripped), offsets


def _line_of(offsets, pos):
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo  # 0-based


def _match_brace(text, open_pos):
    """Position just past the `}` matching the `{` at open_pos, or
    len(text) when unbalanced (truncated parse beats a crash)."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _first_paren_outside_angles(text):
    """Index of the first '(' at angle-bracket depth 0, or -1. Lets
    `std::function<void(int)> cb;` read as a member, not a
    function."""
    depth = 0
    for i, c in enumerate(text):
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            return i
    return -1


def _split_top_commas(text):
    """Split on commas at angle/paren/bracket/brace depth 0 (multi-
    declarator statements: `double a, b;`)."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _member_names(stmt):
    """Declarator names in a member statement (no trailing `;`)."""
    names = []
    for chunk in _split_top_commas(stmt):
        # Truncate at initializer / array extent.
        for stop in ("=", "{", "["):
            pos = chunk.find(stop)
            if pos != -1:
                chunk = chunk[:pos]
        idents = _IDENT.findall(chunk)
        idents = [t for t in idents if t not in _TYPE_KEYWORDS
                  and not t.startswith("TAPAS_")]
        if idents:
            names.append(idents[-1])
    return names


def _parse_body(rel, text, offsets, body_start, body_end, classes,
                class_name):
    """Walk one class body [body_start, body_end), collecting members
    into the last entry of `classes` and recursing into nested
    types."""
    info = classes[-1]
    i = body_start
    stmt_start = body_start
    while i < body_end:
        c = text[i]
        if c == ";":
            _consume_stmt(rel, text, offsets, stmt_start, i, info)
            i += 1
            stmt_start = i
            continue
        if c == "{":
            stmt = text[stmt_start:i]
            head = re.match(
                r"\s*(?:template\s*<[^;{]*>\s*)?"
                r"(?:public\s*:|private\s*:|protected\s*:|\s)*"
                r"(class|struct|enum|union)\b", stmt)
            if head:
                # Nested type definition: recurse (it may declare its
                # own walk), then keep scanning — `} instance;` after
                # the brace still declares a member of the outer.
                close = _match_brace(text, i)
                m = _CLASS_HEAD.search(stmt)
                if m and head.group(1) in ("class", "struct"):
                    nested = ClassInfo(
                        rel, m.group(2),
                        _line_of(offsets, stmt_start + m.start()) + 1)
                    classes.append(nested)
                    _parse_body(rel, text, offsets, i + 1, close - 1,
                                classes, m.group(2))
                # Replace the braced definition with its bare name so
                # `struct Cold { ... } cold;` yields member `cold`.
                i = close
                stmt_start = i
                # Anything up to the next `;` is the declarator list.
                semi = text.find(";", i)
                if semi == -1 or semi >= body_end:
                    break
                tail = text[i:semi]
                for name in _member_names(tail):
                    info.members.append(
                        (name, _line_of(offsets, i) + 1))
                i = semi + 1
                stmt_start = i
                continue
            paren = _first_paren_outside_angles(stmt)
            eq = stmt.find("=")
            if paren != -1 and (eq == -1 or paren < eq):
                # Function definition with inline body.
                close = _match_brace(text, i)
                if "checkpointState" in stmt:
                    info.declares_walk = True
                    info.inline_walk = text[i:close]
                    info.walk_rel = rel
                i = close
                stmt_start = i
                continue
            # Brace initializer (`bool flag{false};`): skip the
            # braces, keep accumulating the statement.
            i = _match_brace(text, i)
            continue
        i += 1
    _consume_stmt(rel, text, offsets, stmt_start, body_end, info)


def _consume_stmt(rel, text, offsets, start, end, info):
    stmt = text[start:end]
    if not stmt.strip():
        return
    # Strip access-specifier labels glued to the front, keeping the
    # char offset so member lines still attribute correctly.
    label = re.match(
        r"[\s]*(?:(?:public|private|protected)\s*:\s*)+", stmt)
    if label:
        start += label.end()
        stmt = stmt[label.end():]
    if not stmt.strip():
        return
    first = _IDENT.search(stmt)
    if not first:
        return
    if "checkpointState" in stmt:
        info.declares_walk = True
        return
    tokens = _IDENT.findall(stmt)
    if first.group(0) in _NON_MEMBER_KEYWORDS or "static" in tokens:
        return
    paren = _first_paren_outside_angles(stmt)
    eq = stmt.find("=")
    if paren != -1 and (eq == -1 or paren < eq):
        return  # function declaration
    decl_line = _line_of(offsets, start + first.start()) + 1
    for name in _member_names(stmt):
        info.members.append((name, decl_line))


def parse_classes(rel, stripped):
    """All class/struct definitions in a stripped header, with their
    members and walk declarations."""
    text, offsets = _text_with_linemap(stripped)
    classes = []
    pos = 0
    while True:
        m = _CLASS_HEAD.search(text, pos)
        if not m:
            break
        # Scan past the base clause for `{` (definition), `;`
        # (forward declaration), or `(` (something else entirely).
        i = m.end()
        while i < len(text) and text[i] not in "{;(":
            i += 1
        if i >= len(text) or text[i] != "{":
            pos = m.end()
            continue
        close = _match_brace(text, i)
        # Skip nested heads in the outer scan: _parse_body recurses.
        info = ClassInfo(rel, m.group(2),
                         _line_of(offsets, m.start()) + 1)
        classes.append(info)
        _parse_body(rel, text, offsets, i + 1, close - 1, classes,
                    m.group(2))
        pos = close
    return classes


def find_walk_body(class_name, stripped_text):
    """Out-of-line `Class::checkpointState(...) { ... }` body in one
    file's stripped text, or None."""
    m = re.search(r"\b%s\s*::\s*checkpointState\s*\("
                  % re.escape(class_name), stripped_text)
    if not m:
        return None
    brace = stripped_text.find("{", m.end())
    if brace == -1:
        return None
    return stripped_text[brace:_match_brace(stripped_text, brace)]


def member_skip(raw_lines, decl_idx):
    """The ckpt-skip annotation attached to the member declared at
    raw_lines[decl_idx] (0-based): ('ok', category, reason),
    ('malformed', line_idx, text), or None. Same attachment rule as
    lint-allow: the declaration line itself or the contiguous //
    block directly above."""
    def probe(idx):
        m = CKPT_SKIP.search(raw_lines[idx])
        if not m:
            return None
        category = m.group(1).strip()
        reason = (m.group(3) or "").strip()
        if category not in SKIP_CATEGORIES or not reason:
            return ("malformed", idx, m.group(0))
        return ("ok", category, reason)

    hit = probe(decl_idx)
    if hit:
        return hit
    j = decl_idx - 1
    while j >= 0:
        stripped = raw_lines[j].strip()
        if not stripped.startswith("//"):
            break
        hit = probe(j)
        if hit:
            return hit
        j -= 1
    return None


def run(root, files, read_raw, read_stripped, changed=None):
    """Run A1. `files` is every source rel under the root; class
    discovery happens in headers, walk lookup across all files.
    Returns (violations, stats, class_table)."""
    headers = [f for f in files if f.endswith((".hh", ".h", ".hpp"))]
    sources = list(files)

    all_classes = []
    for rel in headers:
        stripped = strip_comments_file(read_raw(rel))
        for info in parse_classes(rel, stripped):
            if info.declares_walk:
                all_classes.append(info)

    violations = []
    table = []
    stats = {"classes": 0, "members": 0, "skips": 0}
    stripped_cache = {}

    def stripped_text(rel):
        if rel not in stripped_cache:
            stripped_cache[rel] = "\n".join(read_stripped(rel))
        return stripped_cache[rel]

    for info in all_classes:
        body = info.inline_walk
        if body is None:
            # Prefer the sibling .cc, then any source in the root
            # (SimMetrics's walk lives in sim/checkpoint.cc).
            sibling = re.sub(r"\.(hh|h|hpp)$", ".cc", info.rel)
            order = ([sibling] if sibling in sources else []) + [
                s for s in sources if s != sibling]
            for cand in order:
                body = find_walk_body(info.name, stripped_text(cand))
                if body is not None:
                    info.walk_rel = cand
                    break
        if changed is not None and info.rel not in changed and \
                (info.walk_rel is None or
                 info.walk_rel not in changed):
            continue
        stats["classes"] += 1
        if body is None:
            violations.append(
                (info.rel, info.line, PASS_ID,
                 "class '%s' declares checkpointState but no walk"
                 " body was found in any source file" % info.name))
            continue
        raw = read_raw(info.rel)
        archived = 0
        skipped = 0
        for name, line in info.members:
            if re.search(r"\b%s\b" % re.escape(name), body):
                archived += 1
                continue
            skip = member_skip(raw, line - 1)
            if skip is None:
                if allowed(PASS_ID, raw, line - 1):
                    skipped += 1
                    continue
                violations.append(
                    (info.rel, line, PASS_ID,
                     "member '%s' of '%s' is neither archived in its"
                     " checkpointState walk (%s) nor exempted with"
                     " // ckpt-skip(derived|scratch|constant):"
                     " reason"
                     % (name, info.name, info.walk_rel)))
            elif skip[0] == "malformed":
                violations.append(
                    (info.rel, skip[1] + 1, PASS_ID,
                     "malformed ckpt-skip annotation '%s' (want"
                     " // ckpt-skip(derived|scratch|constant):"
                     " reason)" % skip[2].strip()))
            else:
                skipped += 1
        stats["members"] += len(info.members)
        stats["skips"] += skipped
        table.append((info.name, info.rel, info.line,
                      len(info.members), archived, skipped,
                      info.walk_rel))

    # Grammar sweep: a malformed ckpt-skip anywhere in scope is a
    # violation even when it is attached to nothing (a typo'd
    # annotation must not silently exempt nothing).
    for rel in headers:
        raw = read_raw(rel)
        if changed is not None and rel not in changed:
            continue
        for i, line in enumerate(raw):
            m = CKPT_SKIP.search(line)
            if not m:
                continue
            category = m.group(1).strip()
            reason = (m.group(3) or "").strip()
            if category not in SKIP_CATEGORIES or not reason:
                entry = (rel, i + 1, PASS_ID,
                         "malformed ckpt-skip annotation '%s' (want"
                         " // ckpt-skip(derived|scratch|constant):"
                         " reason)" % m.group(0).strip())
                if entry not in violations:
                    violations.append(entry)

    return violations, stats, table
