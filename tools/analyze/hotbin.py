"""Pass A3: binary hot-path verification.

Lint rule R3 bans allocation calls inside `// tapas-hot` regions at
the textual line level — which has an inlining blind spot by
construction: a helper that allocates, called from a region line,
sails straight through. A3 closes it by checking what the compiler
actually emitted. It walks the Release objects (GCC binutils:
objdump for relocations, addr2line for inline chains), finds every
call to a banned runtime entry point (operator new/delete,
__cxa_throw, malloc/calloc/realloc, pthread_mutex_lock), resolves
the call site's inline chain, and flags it when the outermost
repo-source frame — the hot function's own line — lies inside a
tapas-hot region.

Exemptions, in order:
  - the outermost repo frame is outside every region in its file
    (cold init/teardown code in the same object);
  - the source line carries `lint-allow(A3): reason` (same escape
    grammar as the lint rules);
  - allocator growth on a `*[Ss]cratch*` receiver whose non-repo
    inline frames are all libstdc++ container-growth machinery —
    the steady-state-allocation-free scratch idiom R3 also permits;
  - chains with no repo frame at all that consist purely of
    allocator headers (merged codegen paths addr2line cannot
    attribute; the documented blind spot, surfaced in --verbose).

Objects must be built with full `-g` (inline DIEs): an object whose
banned sites all resolve to `??` is reported as a hard error (exit
2), never silently passed.
"""

import os
import re
import shutil
import subprocess

from lint.textutil import allowed, hot_regions, strip_comments_file

PASS_ID = "A3"

# Demangled callee names banned inside hot regions.
_BANNED_PREFIXES = ("operator new", "operator delete")
_BANNED_EXACT = ("__cxa_throw", "malloc", "calloc", "realloc",
                 "pthread_mutex_lock")

# libstdc++ container-growth machinery: an inline chain whose
# non-repo frames all come from these headers is vector/deque growth,
# eligible for the scratch-receiver exemption. Basenames only — the
# include directory embeds the GCC version.
ALLOC_HEADER_ALLOWLIST = {
    "new_allocator.h", "allocator.h", "alloc_traits.h",
    "stl_vector.h", "vector.tcc", "stl_uninitialized.h",
    "stl_construct.h", "stl_deque.h", "deque.tcc",
}

# Receiver-based scratch growth, mirroring R3's receiver_allow:
# growth method calls plus whole-container copy-assignment (the
# `scratch = source;` first-touch materialization idiom — steady
# state reuses capacity).
_SCRATCH_GROWTH = re.compile(
    r"(?P<recv>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\.\s*(?:push_back|emplace_back|resize|reserve|assign"
    r"|insert)\s*\(|=(?!=))")
_SCRATCH_RECV = re.compile(r"[Ss]cratch")

_SECTION = re.compile(r"^Disassembly of section (\S+):")
_FUNC = re.compile(r"^[0-9a-f]+ <(.+)>:$")
_INSN = re.compile(r"^\s+([0-9a-f]+):\t")
_RELOC = re.compile(r"^\s+([0-9a-f]+):\s+(R_\S+)\s+(.+?)\s*$")
_ADDEND = re.compile(r"[+-]0x[0-9a-f]+$")


def banned_callee(symbol):
    """The canonical banned name for a relocation symbol, or None."""
    sym = _ADDEND.sub("", symbol).strip()
    for prefix in _BANNED_PREFIXES:
        if sym.startswith(prefix):
            return prefix
    if sym in _BANNED_EXACT:
        return sym
    return None


def find_object(objdir, rel):
    """The build object compiled from src-relative `rel`: any path
    under objdir ending with `<rel>.o` (CMake lays objects out as
    <objdir>/CMakeFiles/<target>.dir/<rel>.o; the fixture harness
    mirrors the same tail)."""
    suffix = os.sep + rel.replace("/", os.sep) + ".o"
    hits = []
    for dirpath, dirnames, filenames in os.walk(objdir):
        dirnames.sort()
        for name in sorted(filenames):
            full = os.path.join(dirpath, name)
            if full.endswith(suffix):
                hits.append(full)
    return hits[0] if hits else None


def banned_sites(obj):
    """[(section, call_addr, callee, function)] for every relocation
    against a banned symbol in `obj` (objdump -dr -C; the call
    instruction is the last instruction before the relocation)."""
    out = subprocess.run(
        ["objdump", "-dr", "-C", obj],
        capture_output=True, text=True)
    if out.returncode != 0:
        return None, out.stderr.strip()
    sites = []
    section = None
    func = None
    last_addr = None
    for line in out.stdout.splitlines():
        m = _SECTION.match(line)
        if m:
            section = m.group(1)
            last_addr = None
            continue
        m = _FUNC.match(line)
        if m:
            func = m.group(1)
            continue
        m = _INSN.match(line)
        if m:
            last_addr = int(m.group(1), 16)
            # fall through: a reloc shares the insn line format only
            # when objdump merges them; keep checking below.
        m = _RELOC.match(line)
        if m and ":" in line and "R_" in line:
            callee = banned_callee(m.group(3))
            if callee and section and last_addr is not None:
                sites.append((section, last_addr, callee, func))
    return sites, None


def inline_chains(obj, section, addrs):
    """{addr: [(function, file, line)]} inline chains, innermost
    frame first, via addr2line -aifC -j section."""
    if not addrs:
        return {}
    cmd = ["addr2line", "-e", obj, "-a", "-i", "-f", "-C",
           "-j", section] + ["0x%x" % a for a in addrs]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0:
        return None
    chains = {}
    cur = None
    lines = out.stdout.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("0x"):
            cur = int(line, 16)
            chains[cur] = []
            i += 1
            continue
        if cur is None or i + 1 >= len(lines):
            break
        funcname = line
        loc = lines[i + 1]
        i += 2
        if ":" in loc:
            path, _, lineno = loc.rpartition(":")
            lineno = lineno.split()[0] if lineno else "0"
            try:
                num = int(lineno)
            except ValueError:
                num = 0
            chains[cur].append((funcname, path, num))
        else:
            chains[cur].append((funcname, loc, 0))
    return chains


class FileCache:
    """Raw/stripped lines + hot regions per repo-relative file."""

    def __init__(self, root, read_raw):
        self.root = root
        self.read_raw = read_raw
        self._raw = {}
        self._stripped = {}
        self._regions = {}

    def raw(self, rel):
        if rel not in self._raw:
            self._raw[rel] = self.read_raw(rel)
        return self._raw[rel]

    def stripped(self, rel):
        if rel not in self._stripped:
            self._stripped[rel] = strip_comments_file(self.raw(rel))
        return self._stripped[rel]

    def regions(self, rel):
        if rel not in self._regions:
            self._regions[rel] = hot_regions(self.raw(rel))
        return self._regions[rel]

    def in_region(self, rel, line):
        return any(b <= line <= e for b, e in self.regions(rel))


def classify(cache, root_real, rel_obj, site, chain):
    """('ok', note) when the site is exempt, or
    ('violation', (rel, line, msg)). `rel_obj` is the source the
    object was compiled from (attribution of last resort)."""
    section, addr, callee, func = site
    func = func or "?"

    repo_frames = []
    ext_basenames = set()
    unknown = True
    for framefunc, path, line in chain:
        # Without inline debug info addr2line falls back to the symtab
        # file name with no line ("hot.cc:?") — that is not an
        # attribution, and must feed the all-unknown hard error.
        if path and path != "??" and line > 0:
            unknown = False
            real = os.path.realpath(path)
            if real.startswith(root_real + os.sep):
                rel = os.path.relpath(real, root_real)
                repo_frames.append((rel.replace(os.sep, "/"), line))
            else:
                ext_basenames.add(os.path.basename(path))
    if unknown:
        return ("unknown", None)

    if not repo_frames:
        # No repo frame: an out-of-line template instantiation or
        # merged-codegen allocator path. Its in-region call sites
        # are caught when inlined; the out-of-line call is the
        # documented cross-function blind spot — exempt, surfaced
        # under --verbose so it stays visible.
        return ("ok",
                "%s+0x%x in %s: no repo source frame for %s"
                " (out-of-line instantiation / merged codegen;"
                " chain: %s)"
                % (section, addr, func, callee,
                   ", ".join(sorted(ext_basenames)) or "-"))

    out_rel, out_line = repo_frames[-1]
    if out_line <= 0 or not cache.in_region(out_rel, out_line):
        return ("ok",
                "%s:%d: %s in '%s' attributed outside any tapas-hot"
                " region" % (out_rel, out_line, callee, func))

    raw = cache.raw(out_rel)
    if out_line - 1 < len(raw) and allowed(PASS_ID, raw,
                                           out_line - 1):
        return ("ok", "%s:%d: %s exempted by lint-allow(A3)"
                % (out_rel, out_line, callee))

    if callee in ("operator new", "operator delete"):
        text = cache.stripped(out_rel)[out_line - 1] \
            if out_line - 1 < len(cache.stripped(out_rel)) else ""
        m = _SCRATCH_GROWTH.search(text)
        if m and _SCRATCH_RECV.search(m.group("recv")) and \
                ext_basenames <= ALLOC_HEADER_ALLOWLIST:
            return ("ok",
                    "%s:%d: scratch-receiver container growth (%s)"
                    % (out_rel, out_line, m.group("recv")))

    return ("violation",
            (out_rel, out_line,
             "hot-path call to %s reachable from tapas-hot region"
             " code in '%s' (inline chain via %s)"
             % (callee, func,
                " -> ".join(os.path.basename(p)
                            for _, p, _ in chain) or "direct")))


def run(root, files, read_raw, objdir, changed=None):
    """Run A3 over every file in `files` that contains a tapas-hot
    region. Returns (violations, stats, notes, errors): `errors`
    non-empty means the pass could not do its job (missing tools,
    missing objects, objects without debug info) — the driver exits
    2, never 0."""
    errors = []
    for tool in ("objdump", "addr2line"):
        if shutil.which(tool) is None:
            errors.append("required binutils tool '%s' not on PATH"
                          % tool)
    if errors:
        return [], {}, [], errors

    root_real = os.path.realpath(root)
    cache = FileCache(root, read_raw)

    hot_files = [rel for rel in files
                 if rel.endswith(".cc") and cache.regions(rel)]
    if changed is not None:
        hot_files = [rel for rel in hot_files if rel in changed]

    violations = []
    notes = []
    stats = {"objects": 0, "sites": 0, "exempt": 0}

    for rel in hot_files:
        obj = find_object(objdir, rel)
        if obj is None:
            errors.append(
                "no object for %s under %s (expected a path ending"
                " in %s.o — build the Release tree first)"
                % (rel, objdir, rel))
            continue
        stats["objects"] += 1
        sites, err = banned_sites(obj)
        if sites is None:
            errors.append("objdump failed on %s: %s" % (obj, err))
            continue

        by_section = {}
        for site in sites:
            by_section.setdefault(site[0], []).append(site)

        unknown_sites = 0
        for section, group in sorted(by_section.items()):
            chains = inline_chains(obj, section,
                                   [s[1] for s in group])
            if chains is None:
                errors.append("addr2line failed on %s (%s)"
                              % (obj, section))
                continue
            for site in group:
                stats["sites"] += 1
                chain = chains.get(site[1], [])
                verdict, detail = classify(cache, root_real, rel,
                                           site, chain)
                if verdict == "unknown":
                    unknown_sites += 1
                elif verdict == "ok":
                    stats["exempt"] += 1
                    notes.append(detail)
                else:
                    drel, dline, msg = detail
                    violations.append((drel, dline, PASS_ID, msg))
        if sites and unknown_sites == len(sites):
            errors.append(
                "%s: no inline debug info (all %d banned call sites"
                " resolve to ??) — build with full -g so A3 can"
                " attribute them" % (obj, len(sites)))
        elif unknown_sites:
            notes.append("%s: %d/%d banned sites had no line info"
                         % (rel, unknown_sites, len(sites)))

    return violations, stats, notes, errors
