"""Pass A2: module layering.

Builds the `#include` graph over src/ and enforces the layer DAG.
Modules are the directories directly under src/; the allowed
downward edges are data below (measured from the real tree, richer
than the coarse common -> middle -> sim arrows: core composes every
middle layer, workload drives llm, telemetry and llm read dcsim's
sensor/spec types). Anything not listed — upward edges, cross edges,
cycles, unknown modules — is a violation.

tests/, bench/, and examples/ may depend on anything; A2 only walks
src/.

`--dump-graph` emits the observed graph as JSON (modules, edges with
per-edge file lists, and the allowed matrix) for the docs diagram.
"""

import json
import re

from lint.textutil import allowed

PASS_ID = "A2"

# module -> modules it may include (besides itself). Keep this a DAG:
# run() refuses a cyclic matrix outright (exit 2 upstream) because a
# cyclic "allowed" table would make the whole pass vacuous.
ALLOWED_DEPS = {
    "common": set(),
    "dcsim": {"common"},
    "llm": {"common", "dcsim"},
    "telemetry": {"common", "dcsim"},
    "workload": {"common", "llm"},
    "core": {"common", "dcsim", "llm", "telemetry", "workload"},
    "sim": {"common", "core", "dcsim", "llm", "telemetry",
            "workload"},
}

_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def matrix_cycle():
    """A cycle in ALLOWED_DEPS itself (config error), or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in ALLOWED_DEPS}

    def dfs(m, path):
        color[m] = GREY
        for n in sorted(ALLOWED_DEPS.get(m, ())):
            if n not in color:
                continue
            if color[n] == GREY:
                return path + [m, n]
            if color[n] == WHITE:
                cyc = dfs(n, path + [m])
                if cyc:
                    return cyc
        color[m] = BLACK
        return None

    for m in sorted(ALLOWED_DEPS):
        if color[m] == WHITE:
            cyc = dfs(m, [])
            if cyc:
                return cyc
    return None


def module_of(rel):
    """Module a src-relative path belongs to, or None ('src/sim/x.cc'
    -> 'sim'; files outside src/ have no module)."""
    parts = rel.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def run(root, files, read_raw, changed=None):
    """Run A2 over the src files in `files`. Returns
    (violations, stats, graph) where graph is the JSON-ready dump."""
    del root
    src_files = [f for f in files if module_of(f) is not None]
    modules = sorted({module_of(f) for f in src_files})

    edges = {}  # (from, to) -> sorted set of including files
    violations = []
    include_count = 0

    for rel in src_files:
        mod = module_of(rel)
        raw = read_raw(rel)
        check = changed is None or rel in changed
        for i, line in enumerate(raw):
            m = _INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1)
            tmod = target.split("/")[0] if "/" in target else None
            if tmod is None or tmod not in ALLOWED_DEPS:
                # Not a module-qualified repo include (gtest/...,
                # local "foo.hh" forms) — out of A2's scope.
                continue
            include_count += 1
            edges.setdefault((mod, tmod), set()).add(rel)
            if not check:
                continue
            if mod not in ALLOWED_DEPS:
                if not allowed(PASS_ID, raw, i):
                    violations.append(
                        (rel, i + 1, PASS_ID,
                         "module '%s' is not in the layer map"
                         " (known: %s)"
                         % (mod, ", ".join(sorted(ALLOWED_DEPS)))))
                continue
            if tmod == mod or tmod in ALLOWED_DEPS[mod]:
                continue
            if allowed(PASS_ID, raw, i):
                continue
            kind = ("upward" if mod in ALLOWED_DEPS.get(tmod, set())
                    else "cross")
            violations.append(
                (rel, i + 1, PASS_ID,
                 "layering: %s edge '%s' -> '%s' (module '%s' may"
                 " only include: %s)"
                 % (kind, mod, tmod, mod,
                    ", ".join(sorted(ALLOWED_DEPS[mod])) or
                    "nothing")))

    # Observed-graph cycle check (belt and braces: with an acyclic
    # matrix every cycle already contains a reported edge, but the
    # matrix is editable data).
    adj = {}
    for (a, b), rels in edges.items():
        if a != b:
            adj.setdefault(a, set()).add(b)
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in modules}

    def dfs(m, path):
        color[m] = GREY
        for n in sorted(adj.get(m, ())):
            if color.get(n, BLACK) == GREY:
                return path + [m, n]
            if color.get(n, BLACK) == WHITE:
                cyc = dfs(n, path + [m])
                if cyc:
                    return cyc
        color[m] = BLACK
        return None

    for m in modules:
        if color[m] == WHITE:
            cyc = dfs(m, [])
            if cyc:
                start = cyc[-1]
                loop = cyc[cyc.index(start):]
                witness = sorted(edges[(loop[0], loop[1])])[0]
                violations.append(
                    (witness, 1, PASS_ID,
                     "module cycle: %s" % " -> ".join(loop)))
                break

    graph = {
        "modules": modules,
        "edges": [
            {"from": a, "to": b, "count": len(rels),
             "files": sorted(rels)}
            for (a, b) in sorted(edges)
            for rels in [edges[(a, b)]]
            if a != b
        ],
        "allowed": {m: sorted(d)
                    for m, d in sorted(ALLOWED_DEPS.items())},
    }
    stats = {"modules": len(modules), "includes": include_count,
             "edges": len(graph["edges"])}
    return violations, stats, graph


def dump_graph(graph):
    return json.dumps(graph, indent=2, sort_keys=True)
