#!/usr/bin/env bash
# Local pre-PR gate: the tier-1 verify line plus the step-loop bench
# in smoke mode. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j

echo "== tier-1 tests =="
(cd build && ctest --output-on-failure -j --no-tests=error)

echo "== step-loop bench + perf gate =="
# Full mode (the loop is fast enough); emit the JSON into build/ so
# the repo root stays clean, and gate >20% steps/s regressions
# against the committed baseline.
(cd build && ./bench_step_loop --check ../BENCH_step_loop.json)

echo "OK: all checks passed"
