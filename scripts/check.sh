#!/usr/bin/env bash
# Local pre-PR gate: tapas-lint, the tier-1 verify line plus the
# step-loop bench perf gate in Release, a Debug pass that actually
# executes the incremental-view/predictor cross-check asserts,
# sanitizer legs, and (when clang++ is available) the compile-time
# thread-safety analysis. Run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

# ctest reporting "Skipped" means a registered test silently stopped
# gating; fail loudly instead of letting coverage decay. GTEST_SKIP
# is surfaced by the SKIP_REGULAR_EXPRESSION property every test
# target carries (the binary exits 0, so ctest would otherwise count
# it as Passed); DISABLED_ tests never run at all, so they are
# caught at the source level by tapas-lint rule R6.
fail_on_skipped() {
    local log="$1"
    if grep -qE '\*\*\*Skipped|\(Skipped\)|[0-9]+ tests? skipped|\[  SKIPPED \]' \
        "$log"; then
        echo "FAIL: skipped tests detected in $log" >&2
        exit 1
    fi
}

echo "== tapas-lint =="
# The repo-specific static-analysis gate (scripts/tapas_lint.py):
# deprecated scalar model calls, determinism, hot-region allocations,
# console I/O, header guards, disabled/skipped tests, and raw
# std::mutex use are all machine-checked here. The old DISABLED_ grep
# lives on as rule R6. Rules and escapes: scripts/README.md.
python3 scripts/tapas_lint.py

echo "== tapas-analyze (A1 checkpoint coverage, A2 layering) =="
# The semantic passes (scripts/tapas_analyze.py): every member of a
# checkpointState class archived or ckpt-skip-exempted, and the
# src/ include graph inside the layer DAG. Each pass prints its
# runtime in the summary line. A3 runs after the Release build below.
python3 scripts/tapas_analyze.py

echo "== configure (Release) =="
cmake -B build -S .

echo "== build (Release) =="
cmake --build build -j

echo "== tapas-analyze A3 (binary hot-path verification) =="
# Post-build pass over the Release objects: no operator new/delete,
# __cxa_throw, malloc, or pthread_mutex_lock reachable from
# tapas-hot region code — the inlining blind spot lint R3 cannot
# see. Needs the full-`-g` Release objects built above.
python3 scripts/tapas_analyze.py --pass a3 --objdir build

echo "== tier-1 tests (Release) =="
release_log=$(mktemp)
(cd build && ctest --output-on-failure -j --no-tests=error) \
    | tee "$release_log"
fail_on_skipped "$release_log"

echo "== step-loop bench + perf gate (Release) =="
# Full mode (the loop is fast enough); emit the JSON into build/ so
# the repo root stays clean, and gate >20% steps/s regressions
# against the committed baseline.
(cd build && ./bench_step_loop --check ../BENCH_step_loop.json)

echo "== kill-9 crash-recovery drill (Release) =="
# SIGKILL mid-run, resume from the surviving snapshot, byte-compare
# the resumed report against a straight-through reference, and
# assert a deliberately corrupted snapshot is rejected with a
# structured error (scripts/crash_drill.sh).
scripts/crash_drill.sh build

echo "== configure (Debug) =="
cmake -B build-dbg -S . -DCMAKE_BUILD_TYPE=Debug

echo "== build (Debug) =="
cmake --build build-dbg -j

echo "== tier-1 tests (Debug, asserts on) =="
debug_log=$(mktemp)
(cd build-dbg && ctest --output-on-failure -j --no-tests=error) \
    | tee "$debug_log"
fail_on_skipped "$debug_log"

echo "== step-loop bench under Debug asserts =="
# Smoke mode with --check: in a Debug build the binary skips the
# (meaningless) steps/s comparison but drives the full step loop, so
# the per-step ClusterView-vs-rebuild and SoA/routing cross-check
# asserts actually execute pre-PR.
(cd build-dbg && ./bench_step_loop --smoke --check \
    ../BENCH_step_loop.json)

echo "== configure (ASan+UBSan) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DTAPAS_SANITIZE=ON

echo "== build (ASan+UBSan) =="
cmake --build build-asan -j

echo "== tier-1 tests (ASan+UBSan) =="
# The batched passes hand caller-owned output spans and raw pointer
# lanes through the hot loops; this leg catches out-of-bounds lane
# writes, stale scratch aliasing, and UB in the branch-free solves
# that Release codegen can silently absorb.
asan_log=$(mktemp)
(cd build-asan && ctest --output-on-failure -j --no-tests=error) \
    | tee "$asan_log"
fail_on_skipped "$asan_log"

echo "== configure (TSan) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DTAPAS_SANITIZE=thread

echo "== build (TSan) =="
cmake --build build-tsan -j

echo "== threadpool/sweep + fault suites (TSan) =="
# The suites that actually fan work across the shared thread pool:
# the parallel scenario sweeps (property suite), the fault-engine
# and failure-manager suites (fault drills construct simulators on
# worker threads), and the fault-drill integration test. A full
# ctest pass under TSan is several times slower for no extra
# concurrency coverage — everything else is single-threaded.
tsan_log=$(mktemp)
(cd build-tsan && ctest --output-on-failure -j --no-tests=error \
    -R 'property_test_sweeps|test_failure|test_faults|fault_drill|test_perf_contention') \
    | tee "$tsan_log"
fail_on_skipped "$tsan_log"

echo "== clang thread-safety analysis =="
# Compile-time lock discipline: the TAPAS_GUARDED_BY/TAPAS_REQUIRES
# annotations (src/common/thread_annotations.hh) are checked by
# clang's -Wthread-safety, promoted to errors. The attributes are
# no-ops under GCC, so this leg needs a clang++ on PATH; containers
# without one skip it (CI always runs it). Tests are skipped in this
# build: the analysis is purely compile-time over the library, and
# clang-only containers may lack GTest.
if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-clang -S . \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DTAPAS_THREAD_SAFETY=ON -DTAPAS_BUILD_TESTS=OFF
    cmake --build build-clang -j
else
    echo "SKIP: clang++ not found; thread-safety analysis not run" \
         "locally (CI runs it on every push)" >&2
fi

# Opt-in clang-tidy leg (slow): TAPAS_CLANG_TIDY=1 scripts/check.sh.
# Uses the compile_commands.json the Release configure exported and
# the checks pinned in .clang-tidy.
if [ "${TAPAS_CLANG_TIDY:-0}" != "0" ]; then
    echo "== clang-tidy =="
    if command -v clang-tidy >/dev/null 2>&1; then
        git ls-files 'src/*.cc' | xargs -P "$(nproc)" -n 4 \
            clang-tidy -p build --warnings-as-errors='*'
    else
        echo "FAIL: TAPAS_CLANG_TIDY=1 but clang-tidy not found" >&2
        exit 1
    fi
fi

echo "OK: all checks passed"
