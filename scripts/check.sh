#!/usr/bin/env bash
# Local pre-PR gate: the tier-1 verify line plus the step-loop bench
# perf gate in Release, and a Debug pass that actually executes the
# incremental-view/predictor cross-check asserts. Run from anywhere
# inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

# ctest reporting "Skipped" means a registered test silently stopped
# gating; fail loudly instead of letting coverage decay. GTEST_SKIP
# is surfaced by the SKIP_REGULAR_EXPRESSION property every test
# target carries (the binary exits 0, so ctest would otherwise count
# it as Passed); DISABLED_ tests never run at all, so they are
# caught at the source level below.
fail_on_skipped() {
    local log="$1"
    if grep -qE '\*\*\*Skipped|\(Skipped\)|[0-9]+ tests? skipped|\[  SKIPPED \]' \
        "$log"; then
        echo "FAIL: skipped tests detected in $log" >&2
        exit 1
    fi
}

echo "== no disabled tests =="
if grep -rnE 'TEST(_F|_P)?\(.*DISABLED_|DISABLED_[A-Za-z0-9_]+\s*,' \
    tests/; then
    echo "FAIL: DISABLED_ tests found (they silently stop gating)" >&2
    exit 1
fi

echo "== configure (Release) =="
cmake -B build -S .

echo "== build (Release) =="
cmake --build build -j

echo "== tier-1 tests (Release) =="
release_log=$(mktemp)
(cd build && ctest --output-on-failure -j --no-tests=error) \
    | tee "$release_log"
fail_on_skipped "$release_log"

echo "== step-loop bench + perf gate (Release) =="
# Full mode (the loop is fast enough); emit the JSON into build/ so
# the repo root stays clean, and gate >20% steps/s regressions
# against the committed baseline.
(cd build && ./bench_step_loop --check ../BENCH_step_loop.json)

echo "== configure (Debug) =="
cmake -B build-dbg -S . -DCMAKE_BUILD_TYPE=Debug

echo "== build (Debug) =="
cmake --build build-dbg -j

echo "== tier-1 tests (Debug, asserts on) =="
debug_log=$(mktemp)
(cd build-dbg && ctest --output-on-failure -j --no-tests=error) \
    | tee "$debug_log"
fail_on_skipped "$debug_log"

echo "== step-loop bench under Debug asserts =="
# Smoke mode with --check: in a Debug build the binary skips the
# (meaningless) steps/s comparison but drives the full step loop, so
# the per-step ClusterView-vs-rebuild and SoA/routing cross-check
# asserts actually execute pre-PR.
(cd build-dbg && ./bench_step_loop --smoke --check \
    ../BENCH_step_loop.json)

echo "== configure (ASan+UBSan) =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DTAPAS_SANITIZE=ON

echo "== build (ASan+UBSan) =="
cmake --build build-asan -j

echo "== tier-1 tests (ASan+UBSan) =="
# The batched passes hand caller-owned output spans and raw pointer
# lanes through the hot loops; this leg catches out-of-bounds lane
# writes, stale scratch aliasing, and UB in the branch-free solves
# that Release codegen can silently absorb.
asan_log=$(mktemp)
(cd build-asan && ctest --output-on-failure -j --no-tests=error) \
    | tee "$asan_log"
fail_on_skipped "$asan_log"

echo "== configure (TSan) =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DTAPAS_SANITIZE=thread

echo "== build (TSan) =="
cmake --build build-tsan -j

echo "== threadpool/sweep + fault suites (TSan) =="
# The suites that actually fan work across the shared thread pool:
# the parallel scenario sweeps (property suite), the fault-engine
# and failure-manager suites (fault drills construct simulators on
# worker threads), and the fault-drill integration test. A full
# ctest pass under TSan is several times slower for no extra
# concurrency coverage — everything else is single-threaded.
tsan_log=$(mktemp)
(cd build-tsan && ctest --output-on-failure -j --no-tests=error \
    -R 'property_test_sweeps|test_failure|test_faults|fault_drill') \
    | tee "$tsan_log"
fail_on_skipped "$tsan_log"

echo "OK: all checks passed"
