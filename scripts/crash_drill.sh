#!/usr/bin/env bash
# Kill-9 crash-recovery drill: the executable form of the
# checkpoint/restore contract (docs/checkpoint-format.md).
#
#  1. Reference leg: run a fault-drill scenario straight through and
#     capture its key=value report.
#  2. Crash leg: run the same scenario with periodic checkpoints and
#     let the driver SIGKILL itself mid-run — no cleanup, exactly
#     what a power loss leaves behind.
#  3. Resume leg: rerun pointing at the surviving snapshot; the
#     resumed report must be BYTE-IDENTICAL to the reference
#     (stateDigest and every metric, %.17g doubles included).
#  4. Corruption leg: flip one byte in the middle of the snapshot
#     and assert restore fails with a structured error — a damaged
#     file must never silently resume wrong.
#
# Usage: scripts/crash_drill.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
drill="$build_dir/example_checkpoint_drill"

if [ ! -x "$drill" ]; then
    echo "FAIL: $drill not built (cmake --build $build_dir -j)" >&2
    exit 1
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# The scenario rides in through the structured-error spec loader so
# the drill also exercises loadScenarioSpec end to end.
spec="$work/drill.conf"
cat > "$spec" <<'EOF'
# crash-drill scenario: compound emergency, deterministic seed
scenario = fault-drill
seed = 1301
policy = tapas
sensor_quarantine = true
faults.sensor.mtbf_s = 21600
faults.sensor.mttr_s = 3600
EOF

echo "== crash drill: reference run =="
"$drill" --scenario "$spec" --out "$work/reference.out"

echo "== crash drill: run with checkpoints, SIGKILL mid-run =="
# 137 = 128 + SIGKILL: anything else means the driver exited on its
# own instead of dying mid-run.
rc=0
"$drill" --scenario "$spec" --ckpt "$work/drill.tapasckp" \
    --period-steps 12 --kill-after 5 || rc=$?
if [ "$rc" -ne 137 ]; then
    echo "FAIL: expected the crash leg to die with SIGKILL" \
         "(exit 137), got $rc" >&2
    exit 1
fi
if [ ! -f "$work/drill.tapasckp" ]; then
    echo "FAIL: no snapshot survived the crash" >&2
    exit 1
fi

echo "== crash drill: resume from the surviving snapshot =="
"$drill" --scenario "$spec" --ckpt "$work/drill.tapasckp" \
    --period-steps 12 --out "$work/resumed.out"

echo "== crash drill: compare resumed vs straight-through =="
if ! cmp "$work/reference.out" "$work/resumed.out"; then
    echo "FAIL: resumed run diverged from the reference" >&2
    diff "$work/reference.out" "$work/resumed.out" >&2 || true
    exit 1
fi
echo "OK: resumed report is byte-identical to the reference"

echo "== crash drill: corrupted snapshot must be rejected =="
# Rebuild a snapshot (the resume leg deletes nothing, but make the
# corruption target explicit), then flip one payload byte.
"$drill" --scenario "$spec" --ckpt "$work/corrupt.tapasckp" \
    --period-steps 12 --kill-after 3 || true
python3 - "$work/corrupt.tapasckp" <<'EOF'
import sys
path = sys.argv[1]
with open(path, "rb") as f:
    blob = bytearray(f.read())
blob[len(blob) // 2] ^= 0x10
with open(path, "wb") as f:
    f.write(blob)
EOF
"$drill" --scenario "$spec" --expect-corrupt "$work/corrupt.tapasckp"

# Truncation is the other realistic crash artifact (torn copy, full
# disk): a half file must be rejected the same way.
head -c 100 "$work/corrupt.tapasckp" > "$work/truncated.tapasckp"
"$drill" --scenario "$spec" \
    --expect-corrupt "$work/truncated.tapasckp"

echo "OK: crash drill passed"
