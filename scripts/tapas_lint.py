#!/usr/bin/env python3
"""tapas-lint: the repo-specific static-analysis gate.

Dependency-free (python3 stdlib only). Codifies the conventions that
used to live as grep-able prose — hot-path bans, determinism, lock
discipline, header guards, test hygiene — as machine-checked rules.
The rule table is data in tools/lint/rules.py; this file is the
engine (shared text machinery lives in tools/lint/textutil.py, also
used by scripts/tapas_analyze.py). Wired into scripts/check.sh
(first leg) and CI.

Usage:
    scripts/tapas_lint.py                 # lint the whole repo
    scripts/tapas_lint.py src/sim         # lint a subtree
    scripts/tapas_lint.py --root DIR      # lint another root (the
                                          # fixture mini-roots in
                                          # tests/tooling/fixtures)
    scripts/tapas_lint.py --list-rules    # print the rule table
    scripts/tapas_lint.py --changed-only  # only files touched vs
                                          # origin/main + worktree
    scripts/tapas_lint.py --jsonl         # one JSON object/violation

Output: one `path:line: RULE: message` per violation, sorted.
Exit codes: 0 clean, 1 violations found, 2 usage/internal error.

Escapes: `// lint-allow(<RULE>): <reason>` on the violating line or
in the contiguous `//` comment block immediately above it.
"""

import argparse
import os
import re
import sys

_SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_SCRIPT_DIR)
sys.path.insert(0, os.path.join(_REPO_ROOT, "tools"))

from lint.rules import DEFAULT_EXCLUDES, RULES  # noqa: E402
from lint.textutil import (  # noqa: E402
    HOT_BEGIN,
    HOT_END,
    allowed,
    changed_files,
    collect_files,
    emit_violations,
    matches_glob,
    read_lines,
    strip_comments_file,
)


def hot_region_lines(lines, rel, violations):
    """Line indices inside // tapas-hot begin/end regions; unbalanced
    markers are themselves violations (an unclosed region silently
    un-gates everything after it)."""
    inside = set()
    open_at = None
    for i, line in enumerate(lines):
        if HOT_BEGIN.search(line):
            if open_at is not None:
                violations.append(
                    (rel, i + 1, "R3",
                     "nested tapas-hot begin (previous region opened"
                     " at line %d never closed)" % (open_at + 1)))
            open_at = i
        elif HOT_END.search(line):
            if open_at is None:
                violations.append(
                    (rel, i + 1, "R3",
                     "tapas-hot end without a matching begin"))
            open_at = None
        elif open_at is not None:
            inside.add(i)
    if open_at is not None:
        violations.append(
            (rel, open_at + 1, "R3",
             "unclosed tapas-hot region (missing // tapas-hot end)"))
    return inside


def check_pattern(rule, rel, lines, stripped, violations,
                  hot_only=None):
    rx = re.compile(rule["pattern"])
    recv_allow = rule.get("receiver_allow")
    recv_rx = re.compile(recv_allow) if recv_allow else None
    for i, raw in enumerate(lines):
        if hot_only is not None and i not in hot_only:
            continue
        text = stripped[i] if rule.get("strip_comments") else raw
        for m in rx.finditer(text):
            if recv_rx is not None:
                recv = m.groupdict().get("recv")
                if recv and recv_rx.search(recv):
                    continue
            if allowed(rule["id"], lines, i):
                continue
            violations.append(
                (rel, i + 1, rule["id"],
                 "%s [%s]" % (rule["summary"], m.group(0).strip())))


def check_header_guard(rule, rel, lines, violations):
    stem = rel
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    expected = "TAPAS_" + re.sub(
        r"[^A-Za-z0-9]", "_", stem).upper()
    ifndef_rx = re.compile(r"^\s*#\s*ifndef\s+([A-Za-z0-9_]+)")
    for i, raw in enumerate(lines):
        m = ifndef_rx.match(raw)
        if not m:
            continue
        guard = m.group(1)
        if guard != expected:
            if not allowed(rule["id"], lines, i):
                violations.append(
                    (rel, i + 1, rule["id"],
                     "header guard '%s' must be '%s'"
                     % (guard, expected)))
            return
        define_rx = re.compile(
            r"^\s*#\s*define\s+%s\b" % re.escape(expected))
        if i + 1 >= len(lines) or not define_rx.match(lines[i + 1]):
            violations.append(
                (rel, i + 1, rule["id"],
                 "#ifndef %s must be followed by its #define"
                 % expected))
        return
    violations.append(
        (rel, 1, rule["id"],
         "missing header guard (expected #ifndef %s)" % expected))


def lint_file(root, rel, violations):
    lines = read_lines(root, rel, tool="tapas-lint")
    stripped = strip_comments_file(lines)
    for rule in RULES:
        if not matches_glob(rel, rule["include"]):
            continue
        if matches_glob(rel, rule.get("exclude", [])):
            continue
        if rule["kind"] == "pattern":
            check_pattern(rule, rel, lines, stripped, violations)
        elif rule["kind"] == "hot-region":
            hot = hot_region_lines(lines, rel, violations)
            check_pattern(rule, rel, lines, stripped, violations,
                          hot_only=hot)
        elif rule["kind"] == "header-guard":
            check_header_guard(rule, rel, lines, violations)
        else:
            print("tapas-lint: unknown rule kind %r"
                  % rule["kind"], file=sys.stderr)
            sys.exit(2)


def main():
    ap = argparse.ArgumentParser(
        prog="tapas-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("targets", nargs="*",
                    help="files/directories relative to the root"
                         " (default: src tests bench examples)")
    ap.add_argument("--root", default=_REPO_ROOT,
                    help="lint root (default: the repo root; tests"
                         " point this at fixture mini-roots)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    ap.add_argument("--changed-only", action="store_true",
                    help="lint only files changed vs --base plus the"
                         " dirty/untracked worktree (sub-second"
                         " pre-commit loop)")
    ap.add_argument("--base", default=None,
                    help="base ref for --changed-only (default:"
                         " origin/main, falling back to main)")
    ap.add_argument("--jsonl", action="store_true",
                    help="emit one JSON object per violation instead"
                         " of the path:line format")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args()

    if args.list_rules:
        for rule in RULES:
            print("%s %-28s %s"
                  % (rule["id"], rule["name"], rule["summary"]))
        return 0

    root = os.path.abspath(args.root)
    targets = args.targets
    if not targets:
        targets = [d for d in ("src", "tests", "bench", "examples")
                   if os.path.isdir(os.path.join(root, d))]
        if not targets:
            print("tapas-lint: nothing to lint under %s" % root,
                  file=sys.stderr)
            return 2

    files = collect_files(root, targets, DEFAULT_EXCLUDES,
                          tool="tapas-lint")
    if args.changed_only:
        changed = changed_files(root, args.base, tool="tapas-lint")
        files = [rel for rel in files if rel in changed]

    violations = []
    for rel in files:
        lint_file(root, rel, violations)

    emit_violations(violations, args.jsonl, "tapas-lint")
    if not args.quiet:
        print("tapas-lint: %d violation%s (%d file%s)"
              % (len(violations),
                 "" if len(violations) == 1 else "s",
                 len(files), "" if len(files) == 1 else "s"),
              file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
