#!/usr/bin/env python3
"""tapas-analyze: semantic static-analysis passes.

Where tapas-lint checks lines, tapas-analyze checks meaning — the
three invariants the repo cannot afford to leave to reviewer memory:

  A1  checkpoint field-coverage   every non-static data member of a
      class declaring checkpointState(Archive&) is archived by its
      walk or exempted with // ckpt-skip(derived|scratch|constant):
      reason (a forgotten field = silent restore divergence).
  A2  module layering             the #include graph over src/ stays
      inside the layer DAG (common at the bottom, sim at the top);
      upward edges, cross edges, cycles, unknown modules fail.
  A3  binary hot-path verify      the Release objects of files with
      // tapas-hot regions emit no reachable calls to operator
      new/delete, __cxa_throw, malloc, or pthread_mutex_lock from
      region code — closing lint R3's inlining blind spot. Needs
      --objdir pointing at a build tree compiled with -g.

Dependency-free (python3 stdlib + GCC binutils for A3). Pass logic
lives in tools/analyze/; comment-stripping, escapes, globbing, and
git-changed-file machinery are shared with tapas-lint via
tools/lint/textutil.py.

Usage:
    scripts/tapas_analyze.py                    # A1+A2 on the repo
    scripts/tapas_analyze.py --pass a1          # one pass
    scripts/tapas_analyze.py --pass a3 --objdir build
    scripts/tapas_analyze.py --root DIR         # fixture mini-roots
    scripts/tapas_analyze.py --list-classes     # A1 class inventory
    scripts/tapas_analyze.py --dump-graph       # A2 graph as JSON
    scripts/tapas_analyze.py --changed-only     # diff vs origin/main
    scripts/tapas_analyze.py --jsonl            # machine output

Output: one `path:line: A<n>: message` per violation, sorted; a
per-pass summary with runtime on stderr.
Exit codes: 0 clean, 1 violations found, 2 usage/internal error.

Escapes: `// lint-allow(A<n>): <reason>` (same grammar as the lint
rules); A1 additionally honors the ckpt-skip member annotations.
"""

import argparse
import os
import sys
import time

_SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(_SCRIPT_DIR)
sys.path.insert(0, os.path.join(_REPO_ROOT, "tools"))

from analyze import ckpt, hotbin, layering  # noqa: E402
from lint.rules import DEFAULT_EXCLUDES  # noqa: E402
from lint.textutil import (  # noqa: E402
    changed_files,
    collect_files,
    emit_violations,
    read_lines,
    strip_comments_file,
)

PASSES = ("a1", "a2", "a3")


def main():
    ap = argparse.ArgumentParser(
        prog="tapas-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=_REPO_ROOT,
                    help="analysis root (default: the repo root;"
                         " tests point this at fixture mini-roots)")
    ap.add_argument("--pass", dest="passes", default="a1,a2",
                    help="comma-separated subset of a1,a2,a3"
                         " (default: a1,a2; a3 needs --objdir)")
    ap.add_argument("--objdir", default=None,
                    help="build tree holding the Release objects"
                         " (required for a3; compile with -g)")
    ap.add_argument("--list-classes", action="store_true",
                    help="print the A1 class inventory and exit")
    ap.add_argument("--dump-graph", action="store_true",
                    help="print the A2 include graph as JSON and"
                         " exit")
    ap.add_argument("--changed-only", action="store_true",
                    help="analyze only files changed vs --base plus"
                         " the dirty/untracked worktree")
    ap.add_argument("--base", default=None,
                    help="base ref for --changed-only (default:"
                         " origin/main, falling back to main)")
    ap.add_argument("--jsonl", action="store_true",
                    help="emit one JSON object per violation")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="print per-site exemption notes (A3)")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the per-pass summary lines")
    args = ap.parse_args()

    passes = [p.strip().lower() for p in args.passes.split(",")
              if p.strip()]
    # Inventory modes are single-pass by construction.
    if args.list_classes:
        passes = ["a1"]
    if args.dump_graph:
        passes = ["a2"]
    for p in passes:
        if p not in PASSES:
            print("tapas-analyze: unknown pass %r (known: %s)"
                  % (p, ", ".join(PASSES)), file=sys.stderr)
            return 2
    if "a3" in passes and not args.objdir:
        print("tapas-analyze: pass a3 requires --objdir (a built"
              " Release tree with -g objects)", file=sys.stderr)
        return 2
    if args.objdir and not os.path.isdir(args.objdir):
        print("tapas-analyze: --objdir %s is not a directory"
              % args.objdir, file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print("tapas-analyze: no src/ under %s" % root,
              file=sys.stderr)
        return 2

    files = collect_files(root, ["src"], DEFAULT_EXCLUDES,
                          tool="tapas-analyze")
    changed = None
    if args.changed_only:
        changed = changed_files(root, args.base,
                                tool="tapas-analyze")

    raw_cache = {}
    stripped_cache = {}

    def read_raw(rel):
        if rel not in raw_cache:
            raw_cache[rel] = read_lines(root, rel,
                                        tool="tapas-analyze")
        return raw_cache[rel]

    def read_stripped(rel):
        if rel not in stripped_cache:
            stripped_cache[rel] = strip_comments_file(read_raw(rel))
        return stripped_cache[rel]

    violations = []
    hard_error = False

    def summary(line):
        if not args.quiet:
            print(line, file=sys.stderr)

    if "a1" in passes:
        t0 = time.monotonic()
        v1, s1, table = ckpt.run(root, files, read_raw,
                                 read_stripped, changed=changed)
        dt = time.monotonic() - t0
        if args.list_classes:
            for (name, rel, line, members, archived, skipped,
                 walk_rel) in sorted(table, key=lambda r: (r[1],
                                                           r[2])):
                print("%s %s:%d members=%d archived=%d skipped=%d"
                      " walk=%s"
                      % (name, rel, line, members, archived,
                         skipped, walk_rel or "-"))
            return 0
        violations.extend(v1)
        summary("tapas-analyze: A1 %d classes, %d members,"
                " %d ckpt-skips, %d violations [%.2fs]"
                % (s1["classes"], s1["members"], s1["skips"],
                   len(v1), dt))

    if "a2" in passes:
        cyc = layering.matrix_cycle()
        if cyc:
            print("tapas-analyze: ALLOWED_DEPS matrix is cyclic"
                  " (%s) — fix tools/analyze/layering.py"
                  % " -> ".join(cyc), file=sys.stderr)
            return 2
        t0 = time.monotonic()
        v2, s2, graph = layering.run(root, files, read_raw,
                                     changed=changed)
        dt = time.monotonic() - t0
        if args.dump_graph:
            print(layering.dump_graph(graph))
            return 0
        violations.extend(v2)
        summary("tapas-analyze: A2 %d modules, %d module-qualified"
                " includes, %d edges, %d violations [%.2fs]"
                % (s2["modules"], s2["includes"], s2["edges"],
                   len(v2), dt))

    if "a3" in passes:
        t0 = time.monotonic()
        v3, s3, notes, errors = hotbin.run(
            root, files, read_raw, os.path.abspath(args.objdir),
            changed=changed)
        dt = time.monotonic() - t0
        if args.verbose:
            for note in notes:
                print("tapas-analyze: A3 note: %s" % note,
                      file=sys.stderr)
        for err in errors:
            print("tapas-analyze: A3 error: %s" % err,
                  file=sys.stderr)
            hard_error = True
        if not errors:
            violations.extend(v3)
            summary("tapas-analyze: A3 %d objects, %d banned call"
                    " sites, %d exempt, %d violations [%.2fs]"
                    % (s3["objects"], s3["sites"], s3["exempt"],
                       len(v3), dt))

    emit_violations(violations, args.jsonl, "tapas-analyze")
    if hard_error:
        return 2
    return 1 if violations else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # `tapas_analyze.py --dump-graph | head` is legitimate.
        sys.exit(0)
